//! One renderer per table/figure of the paper.

use crate::csv::Csv;
use crate::paper::{Comparison, PaperTargets};
use crate::table::{count, pct, pct2, TextTable};
use model::{ClientCategory, ColumnarDataset, Dataset, DnsFailureKind, SiteId};
use netprofiler::bgp_corr::{self, SeverityRule};
use netprofiler::episodes::figure4;
use netprofiler::{
    blame, dns_analysis, loss_corr, proxy_analysis, replicas, similarity, spread, summary,
    tcp_analysis, Analysis, AnalysisConfig,
};

/// Render every table and figure into one string, in the `reproduce` binary's
/// emission order, with `==== id ====` section headers.
///
/// This is the bit-for-bit comparison surface for the determinism checks:
/// two runs (any thread counts, profiling on or off) must produce identical
/// output here. The conservative (f = 10%) analysis is derived from the same
/// `config` so its scan thread count carries over.
pub fn render_all(ds: &Dataset, config: AnalysisConfig, seed: u64) -> String {
    let _span = telemetry::span!("report.render_all");
    let a5 = Analysis::new(ds, config);
    let a10 = Analysis::new(ds, config.with_threshold(0.10));
    let mut out = String::new();
    let mut emit = |id: &str, body: &str| {
        out.push_str("==== ");
        out.push_str(id);
        out.push_str(" ====\n");
        out.push_str(body);
        out.push('\n');
    };
    for (id, body) in paper_blocks(ds, &a5, &a10, seed) {
        emit(id, &body);
    }
    let comps = comparisons(ds, &a5, &a10);
    emit(
        "compare",
        &comps.iter().map(|c| c.line() + "\n").collect::<String>(),
    );
    out
}

/// Every paper table/figure as `(id, text block)`, in the `reproduce`
/// emission order — the single source both [`render_all`] (the text
/// fingerprint surface) and the HTML [`PaperSection`] draw from, so the
/// two can never drift. Excludes the `compare` block, which
/// [`comparisons`] provides in structured form.
pub fn paper_blocks(
    ds: &Dataset,
    a5: &Analysis<'_>,
    a10: &Analysis<'_>,
    seed: u64,
) -> Vec<(&'static str, String)> {
    let mut blocks: Vec<(&'static str, String)> = vec![
        ("table1", render_table1(ds)),
        ("table2", render_table2(ds)),
        ("table3", render_table3(&a5.cds)),
        ("fig1", render_figure1(&a5.cds)),
        ("table4", render_table4(ds)),
        ("fig2", render_figure2(ds)),
        ("fig3", render_figure3(ds)),
        ("permanent", render_permanent(a5)),
        ("fig4", render_figure4(a5)),
        ("table5", render_table5(a5, a10)),
        ("episodes", render_episode_stats(a5)),
        ("table6", render_table6(a5, 12)),
        ("table7", render_table7(a5, seed)),
        ("table8", render_table8(a5, 8)),
        ("replicas", render_replicas(a5)),
        ("bgp", render_bgp(a5)),
    ];
    if let Some(csv) = render_client_timeseries_csv(ds, "howard") {
        blocks.push(("fig5", csv));
    }
    blocks.push(("fig6", render_figure6_csv(a5)));
    if let Some(csv) = render_client_timeseries_csv(ds, "kscy") {
        blocks.push(("fig7", csv));
    }
    blocks.push(("table9", render_table9(a5, &["iitb", "royal"])));
    blocks.push(("pairs", render_pair_episodes(a5)));
    blocks.push(("medians", render_medians(&a5.cds)));
    blocks.push(("timing", render_timing(ds)));
    blocks.push(("loss", render_loss(ds)));
    blocks.push(("digcheck", render_digcheck(ds)));
    blocks
}

/// The paper's tables and figures as an HTML report section: each text
/// block verbatim in a `<pre>` (escaped), under its `==== id ====` anchor.
/// The blocks are the same strings `render_all` emits, so the page shows
/// exactly what the fingerprint surface contains.
pub struct PaperSection {
    pub blocks: Vec<(&'static str, String)>,
}

impl crate::html::Section for PaperSection {
    fn id(&self) -> &'static str {
        "paper"
    }

    fn title(&self) -> String {
        "Paper tables and figures".to_string()
    }

    fn build(&self, out: &mut crate::html::SectionBuilder) {
        for (id, body) in &self.blocks {
            out.subheading(&format!("paper-{id}"), id);
            out.preformatted(body.trim_end());
        }
    }
}

/// Table 1: the client fleet.
pub fn render_table1(ds: &Dataset) -> String {
    let mut t = TextTable::new(["category", "clients", "co-located pairs", "proxied"])
        .with_title("Table 1: clients")
        .right_align(&[1, 2, 3]);
    for cat in ClientCategory::ALL {
        let members: Vec<_> = ds.clients_in(cat).collect();
        let pairs = ds
            .colocated_pairs()
            .iter()
            .filter(|(a, _)| ds.client(*a).category == cat)
            .count();
        let proxied = members.iter().filter(|c| c.proxy.is_some()).count();
        t.row([
            cat.abbrev().to_string(),
            members.len().to_string(),
            pairs.to_string(),
            proxied.to_string(),
        ]);
    }
    t.row([
        "total".to_string(),
        ds.clients.len().to_string(),
        ds.colocated_pairs().len().to_string(),
        ds.clients.iter().filter(|c| c.proxy.is_some()).count().to_string(),
    ]);
    t.render()
}

/// Table 2: the websites by category.
pub fn render_table2(ds: &Dataset) -> String {
    let mut t = TextTable::new(["category", "sites", "example hosts"])
        .with_title("Table 2: websites")
        .right_align(&[1]);
    for cat in model::SiteCategory::ALL {
        let members: Vec<_> = ds.sites.iter().filter(|s| s.category == cat).collect();
        let examples: Vec<&str> = members
            .iter()
            .take(3)
            .map(|s| s.hostname.as_str())
            .collect();
        t.row([
            cat.label().to_string(),
            members.len().to_string(),
            examples.join(", "),
        ]);
    }
    t.render()
}

/// Table 3: transaction/connection counts and failure rates per category.
pub fn render_table3(cds: &ColumnarDataset) -> String {
    let mut t = TextTable::new([
        "category",
        "trans.",
        "failed trans.",
        "conn.",
        "failed conn.",
    ])
    .with_title("Table 3: overall transaction and connection counts")
    .right_align(&[1, 2, 3, 4]);
    for row in summary::table3(cds) {
        t.row([
            row.category.abbrev().to_string(),
            count(row.transactions),
            format!(
                "{} ({})",
                count(row.failed_transactions),
                pct(row.transaction_failure_rate())
            ),
            row.connections.map_or("N/A".into(), count),
            match (row.failed_connections, row.connection_failure_rate()) {
                (Some(f), Some(r)) => format!("{} ({})", count(f), pct(r)),
                _ => "N/A".into(),
            },
        ]);
    }
    t.render()
}

/// Figure 1: failure rate and breakdown per category.
pub fn render_figure1(cds: &ColumnarDataset) -> String {
    let mut t = TextTable::new(["category", "failure rate", "DNS", "TCP", "HTTP"])
        .with_title("Figure 1: transaction failure rate and breakdown by type")
        .right_align(&[1, 2, 3, 4]);
    for (cat, rate, breakdown) in summary::figure1(cds) {
        match breakdown {
            Some(b) => t.row([
                cat.abbrev().to_string(),
                pct2(rate),
                pct(b.dns_share()),
                pct(b.tcp_share()),
                pct(b.http_share()),
            ]),
            None => t.row([
                cat.abbrev().to_string(),
                pct2(rate),
                "(masked)".into(),
                "(masked)".into(),
                "(masked)".into(),
            ]),
        };
    }
    t.render()
}

/// Table 4: DNS failure breakdown per category.
pub fn render_table4(ds: &Dataset) -> String {
    let mut t = TextTable::new([
        "category",
        "failures",
        "LDNS timeout",
        "non-LDNS timeout",
        "error",
    ])
    .with_title("Table 4: breakdown of DNS failures")
    .right_align(&[1, 2, 3, 4]);
    for cat in [
        ClientCategory::PlanetLab,
        ClientCategory::Broadband,
        ClientCategory::Dialup,
    ] {
        let b = dns_analysis::dns_breakdown(ds, cat);
        t.row([
            cat.abbrev().to_string(),
            count(b.total),
            pct(b.ldns_share()),
            pct(b.non_ldns_share()),
            pct(b.error_share()),
        ]);
    }
    t.render()
}

/// Figure 2: domain concentration of DNS failure categories.
pub fn render_figure2(ds: &Dataset) -> String {
    let all = dns_analysis::domain_concentration(ds, |_| true);
    let ldns = dns_analysis::domain_concentration(ds, |k| k == DnsFailureKind::LdnsTimeout);
    let errors =
        dns_analysis::domain_concentration(ds, |k| matches!(k, DnsFailureKind::ErrorResponse(_)));
    let non_ldns = dns_analysis::domain_concentration(ds, |k| k == DnsFailureKind::NonLdnsTimeout);

    let mut t = TextTable::new([
        "DNS failure class",
        "domains hit",
        "top-domain share",
        "domains for 50%",
        "skew",
    ])
    .with_title("Figure 2: contribution of website domains to DNS failures")
    .right_align(&[1, 2, 3, 4]);
    for (name, c) in [
        ("all DNS failures", &all),
        ("LDNS timeouts", &ldns),
        ("non-LDNS timeouts", &non_ldns),
        ("error responses", &errors),
    ] {
        t.row([
            name.to_string(),
            c.per_site.len().to_string(),
            pct(c.top_share()),
            c.sites_to_cover(0.5).to_string(),
            format!("{:.2}", c.skew()),
        ]);
    }
    let mut out = t.render();
    if let Some((site, n)) = errors.per_site.first() {
        out.push_str(&format!(
            "top error-response domain: {} ({} failures, {})\n",
            ds.site(SiteId(*site)).hostname,
            n,
            pct(errors.top_share())
        ));
    }
    out
}

/// Figure 3: TCP connection-failure breakdown.
pub fn render_figure3(ds: &Dataset) -> String {
    let mut t = TextTable::new([
        "category",
        "failed conn.",
        "no connection",
        "no response",
        "partial response",
        "no/partial (untraced)",
    ])
    .with_title("Figure 3: breakdown of TCP connection failures")
    .right_align(&[1, 2, 3, 4, 5]);
    for (cat, b) in tcp_analysis::figure3(ds) {
        if cat == ClientCategory::CorpNet {
            continue; // masked by the proxies, as in the paper
        }
        t.row([
            cat.abbrev().to_string(),
            count(b.total),
            pct(b.no_connection_share()),
            pct(b.no_response_share()),
            pct(b.partial_response_share()),
            pct(b.no_or_partial_share()),
        ]);
    }
    let mut out = t.render();
    let h = tcp_analysis::syn_retx_histogram(ds);
    out.push_str(&format!(
        "SYN retransmissions: {} of successful connections needed any; {} of failed
         connections exhausted the schedule (the Section 5 burst-loss signature)
",
        pct(h.ok_retx_share()),
        pct(h.failed_exhausted_share()),
    ));
    out
}

/// §4.4.2: near-permanent pairs.
pub fn render_permanent(analysis: &Analysis<'_>) -> String {
    let p = &analysis.permanent;
    let mut out = format!(
        "Near-permanent pairs: {} (of {} client-site pairs)\n\
         share of connection failures: {}\n\
         share of transaction failures: {}\n",
        p.len(),
        analysis.ds.clients.len() * analysis.ds.sites.len(),
        pct(p.share_of_connection_failures),
        pct(p.share_of_transaction_failures),
    );
    let mut t = TextTable::new(["client", "site", "transactions", "failure rate"])
        .right_align(&[2, 3]);
    for pair in p.detail.iter().take(12) {
        t.row([
            analysis.ds.client(pair.client).name.clone(),
            analysis.ds.site(pair.site).hostname.clone(),
            pair.transactions.to_string(),
            pct(pair.failure_rate()),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Figure 4: the episode-rate CDFs and knees.
pub fn render_figure4(analysis: &Analysis<'_>) -> String {
    let f4 = figure4(analysis);
    let mut t = TextTable::new(["quantile", "client rate", "server rate"])
        .with_title("Figure 4: CDF of hourly failure rates (clients & servers)")
        .right_align(&[1, 2]);
    let client_rates: Vec<f64> = f4.clients.points.iter().map(|(r, _)| *r).collect();
    let _ = client_rates;
    for q in [0.5, 0.75, 0.9, 0.95, 0.99] {
        let cq = invert_cdf(&f4.clients, q);
        let sq = invert_cdf(&f4.servers, q);
        t.row([format!("p{:.0}", q * 100.0), pct2(cq), pct2(sq)]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "knee (clients): {}   knee (servers): {}   [thresholds f=5%/10% per the paper]\n",
        f4.client_knee.map_or("n/a".into(), pct2),
        f4.server_knee.map_or("n/a".into(), pct2),
    ));
    out
}

fn invert_cdf(cdf: &netprofiler::episodes::RateCdf, q: f64) -> f64 {
    cdf.points
        .iter()
        .find(|(_, c)| *c >= q)
        .map(|(r, _)| *r)
        .unwrap_or_else(|| cdf.points.last().map(|(r, _)| *r).unwrap_or(0.0))
}

/// Table 5: blame classification at two thresholds.
pub fn render_table5(a5: &Analysis<'_>, a10: &Analysis<'_>) -> String {
    let mut t = TextTable::new(["classification", "server-side", "client-side", "both", "other"])
        .with_title("Table 5: classification of TCP connection failures")
        .right_align(&[1, 2, 3, 4]);
    for (label, a) in [("f=5%", a5), ("f=10%", a10)] {
        let b = blame::table5(a);
        t.row([
            label.to_string(),
            pct(b.share(blame::BlameClass::ServerSide)),
            pct(b.share(blame::BlameClass::ClientSide)),
            pct(b.share(blame::BlameClass::Both)),
            pct(b.share(blame::BlameClass::Other)),
        ]);
    }
    t.render()
}

/// §4.4.5: server-side episode statistics.
pub fn render_episode_stats(analysis: &Analysis<'_>) -> String {
    let s = blame::server_episode_stats(analysis);
    format!(
        "Server-side failure episodes (f={}):\n\
         total 1-hour episodes: {}\n\
         coalesced runs: {} (mean {:.2} h, median {} h, max {} h)\n\
         servers with ≥1 episode: {} / {}\n\
         servers with multiple runs: {}\n",
        pct(analysis.config.episode_threshold),
        s.total_hours,
        s.coalesced,
        s.mean_run_hours,
        s.median_run_hours,
        s.max_run_hours,
        s.servers_affected,
        analysis.ds.sites.len(),
        s.servers_multiple,
    )
}

/// Table 6: the most failure-prone servers and their spread.
pub fn render_table6(analysis: &Analysis<'_>, top: usize) -> String {
    let rows = spread::table6(analysis);
    let mut t = TextTable::new(["server", "episodes (h)", "ascribed failures", "spread"])
        .with_title("Table 6: most failure-prone servers and spread")
        .right_align(&[1, 2, 3]);
    for r in rows.iter().take(top) {
        t.row([
            analysis.ds.site(r.site).hostname.clone(),
            r.episode_hours.to_string(),
            count(r.ascribed_failures),
            pct(r.spread()),
        ]);
    }
    t.render()
}

/// Table 7: similarity histogram, co-located vs random pairs.
pub fn render_table7(analysis: &Analysis<'_>, seed: u64) -> String {
    let coloc = similarity::colocated_similarities(analysis);
    let random = similarity::random_pair_similarities(analysis, coloc.len(), seed);
    let hc = similarity::SimilarityHistogram::from_pairs(&coloc);
    let hr = similarity::SimilarityHistogram::from_pairs(&random);
    let mut t = TextTable::new(["similarity", "co-located pairs", "random pairs"])
        .with_title("Table 7: client-side episode similarity")
        .right_align(&[1, 2]);
    t.row(["# pairs".to_string(), hc.pairs.to_string(), hr.pairs.to_string()]);
    t.row([">75%".to_string(), hc.above_75.to_string(), hr.above_75.to_string()]);
    t.row(["50–75%".to_string(), hc.from_50_to_75.to_string(), hr.from_50_to_75.to_string()]);
    t.row(["25–50%".to_string(), hc.from_25_to_50.to_string(), hr.from_25_to_50.to_string()]);
    t.row([
        "<25% & >0".to_string(),
        hc.below_25_nonzero.to_string(),
        hr.below_25_nonzero.to_string(),
    ]);
    t.row(["= 0%".to_string(), hc.zero.to_string(), hr.zero.to_string()]);
    t.render()
}

/// Table 8: example co-located pairs.
pub fn render_table8(analysis: &Analysis<'_>, top: usize) -> String {
    let rows = similarity::table8(analysis);
    let mut t = TextTable::new(["client pair", "episodes in union", "similarity"])
        .with_title("Table 8: example co-located pairs")
        .right_align(&[1, 2]);
    for r in rows.iter().take(top) {
        t.row([
            format!(
                "{} / {}",
                analysis.ds.client(r.a).name,
                analysis.ds.client(r.b).name
            ),
            r.union.to_string(),
            pct(r.similarity()),
        ]);
    }
    t.render()
}

/// §4.5: replica analysis.
pub fn render_replicas(analysis: &Analysis<'_>) -> String {
    let r = replicas::analyze(analysis);
    format!(
        "Replica analysis (qualification: ≥{} of a site's connections):\n\
         zero-replica (CDN) sites: {}\n\
         single-replica sites: {}\n\
         multi-replica sites: {}\n\
         server-side episodes on multi-replica sites: {} of {} ({})\n\
         total-replica failures: {} of {} multi episodes ({})\n\
         total-replica failures on same-/24 layouts: {}\n",
        pct(analysis.config.replica_qualify_fraction),
        r.zero_replica_sites,
        r.single_replica_sites,
        r.multi_replica_sites,
        r.episode_hours_multi,
        r.episode_hours_total,
        pct(r.multi_share()),
        r.total_replica_hours,
        r.episode_hours_multi,
        pct(r.total_share()),
        pct(r.same_subnet_share()),
    )
}

/// §4.6: severe instability under both rules.
pub fn render_bgp(analysis: &Analysis<'_>) -> String {
    let grid = bgp_corr::prefix_grid(analysis);
    let main = bgp_corr::severe_instability_with_grid(
        analysis,
        SeverityRule::Neighbors(analysis.config.severe_neighbors),
        &grid,
    );
    let alt = bgp_corr::severe_instability_with_grid(
        analysis,
        SeverityRule::WithdrawalsAndNeighbors(
            analysis.config.alt_withdrawals,
            analysis.config.alt_neighbors,
        ),
        &grid,
    );
    let mut out = format!(
        "Severe BGP instability vs TCP failures:\n\
         rule ≥{} neighbors withdrawing: {} instances; failure rate >5% in {} of measurable\n\
         rule ≥{} withdrawals & ≥{} neighbors: {} instances; >10% in {}, >20% in {}\n",
        analysis.config.severe_neighbors,
        main.instances.len(),
        pct(main.fraction_above_5pct),
        analysis.config.alt_withdrawals,
        analysis.config.alt_neighbors,
        alt.instances.len(),
        pct(alt.fraction_above_10pct),
        pct(alt.fraction_above_20pct),
    );
    let mut t = TextTable::new(["prefix", "hour", "withdrawals", "neighbors", "attempts", "tcp failure rate"])
        .right_align(&[1, 2, 3, 4, 5]);
    for i in main.instances.iter().take(24) {
        t.row([
            analysis.ds.prefix(i.prefix).to_string(),
            i.hour.to_string(),
            i.bgp.withdrawals.to_string(),
            i.bgp.neighbors_withdrawing.to_string(),
            i.attempts.to_string(),
            i.tcp_failure_rate.map_or("n/a".into(), pct),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Figure 5/7: one client's hourly series as CSV (active hours only).
pub fn render_client_timeseries_csv(ds: &Dataset, client_name: &str) -> Option<String> {
    let client = ds.clients.iter().find(|c| c.name.contains(client_name))?;
    let ts = bgp_corr::client_timeseries(ds, client.id);
    let mut csv = Csv::new([
        "hour",
        "attempts",
        "failures",
        "longest_streak",
        "withdrawals",
        "neighbors_withdrawing",
    ]);
    for h in 0..ts.attempts.len() {
        if ts.attempts[h] == 0 && ts.withdrawals[h] == 0 {
            continue;
        }
        csv.row([
            h.to_string(),
            ts.attempts[h].to_string(),
            ts.failures[h].to_string(),
            ts.longest_streak[h].to_string(),
            ts.withdrawals[h].to_string(),
            ts.neighbors_withdrawing[h].to_string(),
        ]);
    }
    Some(csv.finish())
}

/// Figure 6: the CDF of failure rates during alt-rule instability, as CSV.
pub fn render_figure6_csv(analysis: &Analysis<'_>) -> String {
    let rates = bgp_corr::figure6_rates(analysis);
    let mut csv = Csv::new(["tcp_failure_rate", "cdf"]);
    let n = rates.len().max(1);
    for (i, r) in rates.iter().enumerate() {
        csv.row_f64(&[*r, (i + 1) as f64 / n as f64], 4);
    }
    csv.finish()
}

/// Table 9: proxy residual failures on the named sites.
pub fn render_table9(analysis: &Analysis<'_>, hostnames: &[&str]) -> String {
    let ds = analysis.ds;
    let txn_grid = netprofiler::grid::client_transaction_grid(
        &analysis.cds,
        &analysis.permanent,
        analysis.config.threads,
    );
    let mut t = TextTable::new(["site", "client", "residual failure rate"])
        .with_title("Table 9: residual failure rates after excluding client/server episodes")
        .right_align(&[2]);
    for host in hostnames {
        let Some(site) = ds.sites.iter().find(|s| s.hostname.contains(host)) else {
            continue;
        };
        let row = proxy_analysis::residual_rates_with_grid(analysis, site.id, &txn_grid);
        for (cid, rr) in &row.proxied {
            t.row([
                site.hostname.clone(),
                ds.client(*cid).name.clone(),
                pct2(rr.rate()),
            ]);
        }
        if let Some((cid, rr)) = &row.external {
            t.row([
                site.hostname.clone(),
                format!("{} (ext)", ds.client(*cid).name),
                pct2(rr.rate()),
            ]);
        }
        t.row([
            site.hostname.clone(),
            "non-CN".to_string(),
            pct2(row.non_cn.rate()),
        ]);
    }
    let mut out = t.render();
    let shared = proxy_analysis::shared_proxy_sites(analysis, 0.003, 5.0);
    out.push_str("shared-proxy scan (all proxies elevated, external/non-CN clean): ");
    if shared.is_empty() {
        out.push_str("none\n");
    } else {
        let names: Vec<String> = shared
            .iter()
            .map(|s| {
                format!(
                    "{} (min proxied {}, non-CN {})",
                    ds.site(s.site).hostname,
                    pct2(s.min_proxied_rate),
                    pct2(s.non_cn_rate)
                )
            })
            .collect();
        out.push_str(&names.join("; "));
        out.push('\n');
    }
    out
}

/// Section 2.2 category 3 (deferred by the paper): client-server-specific
/// episodes over wider windows.
pub fn render_pair_episodes(analysis: &Analysis<'_>) -> String {
    use netprofiler::pair_episodes::{detect, PairEpisodeConfig};
    let cfg = PairEpisodeConfig::default();
    let report = detect(analysis, cfg);
    let mut out = format!(
        "Client-server-specific episodes ({}h windows, ≥{} rate, ≥{} samples):
         episodes: {} across {} distinct pairs; {} pair-windows shadowed by endpoint episodes
",
        cfg.window_hours,
        pct(cfg.threshold),
        cfg.min_samples,
        report.episodes.len(),
        report.distinct_pairs,
        report.shadowed_by_endpoint,
    );
    let mut t = TextTable::new(["client", "site", "window", "rate"]).right_align(&[2, 3]);
    for ep in report.episodes.iter().take(10) {
        t.row([
            analysis.ds.client(ep.client).name.clone(),
            analysis.ds.site(ep.site).hostname.clone(),
            ep.window.to_string(),
            pct(ep.rate()),
        ]);
    }
    if !report.episodes.is_empty() {
        out.push_str(&t.render());
    }
    out
}

/// §4.1.1 medians and §4.1.3 / §4.2 statistics.
/// Timing quantiles per category (Section 3.5's recorded times).
pub fn render_timing(ds: &Dataset) -> String {
    let mut t = TextTable::new([
        "category",
        "dns p50 (ms)",
        "dns p90",
        "download p50 (ms)",
        "download p90",
        "download p99",
    ])
    .with_title("Lookup/download times of successful transactions")
    .right_align(&[1, 2, 3, 4, 5]);
    for (cat, s) in netprofiler::timing::timing_by_category(ds) {
        if s.download.samples == 0 {
            continue;
        }
        t.row([
            cat.abbrev().to_string(),
            format!("{:.1}", s.dns.p50),
            format!("{:.1}", s.dns.p90),
            format!("{:.0}", s.download.p50),
            format!("{:.0}", s.download.p90),
            format!("{:.0}", s.download.p99),
        ]);
    }
    t.render()
}

pub fn render_medians(cds: &ColumnarDataset) -> String {
    let clients = summary::client_failure_rates(cds);
    let servers = summary::server_failure_rates(cds);
    format!(
        "median client failure rate: {}\n\
         median server failure rate: {}\n\
         95th percentile client failure rate: {}\n",
        summary::quantile(&clients, 0.5).map_or("n/a".into(), pct2),
        summary::quantile(&servers, 0.5).map_or("n/a".into(), pct2),
        summary::quantile(&clients, 0.95).map_or("n/a".into(), pct2),
    )
}

pub fn render_loss(ds: &Dataset) -> String {
    match loss_corr::loss_failure_correlation(ds, 30) {
        Some(r) => format!("loss/failure correlation (per client-site pair): r = {r:.2}\n"),
        None => "loss/failure correlation: insufficient data\n".into(),
    }
}

pub fn render_digcheck(ds: &Dataset) -> String {
    match dns_analysis::dig_agreement(ds) {
        Some(a) => format!("iterative dig agrees with failed wget lookups: {}\n", pct(a)),
        None => "dig agreement: no DNS failures with dig data\n".into(),
    }
}

/// The paper-vs-measured comparison sheet (EXPERIMENTS.md content).
pub fn comparisons(ds: &Dataset, a5: &Analysis<'_>, a10: &Analysis<'_>) -> Vec<Comparison> {
    let p = PaperTargets::published();
    let mut out = Vec::new();
    let mut push = |what: &'static str, paper: String, measured: String, ok: bool| {
        out.push(Comparison {
            what,
            paper,
            measured,
            ok,
        });
    };

    let rates = summary::client_failure_rates(&a5.cds);
    let med_c = summary::quantile(&rates, 0.5).unwrap_or(0.0);
    push(
        "median client failure rate",
        pct2(p.median_client_failure_rate),
        pct2(med_c),
        (0.005..0.035).contains(&med_c),
    );
    let s_rates = summary::server_failure_rates(&a5.cds);
    let med_s = summary::quantile(&s_rates, 0.5).unwrap_or(0.0);
    push(
        "median server failure rate",
        pct2(p.median_server_failure_rate),
        pct2(med_s),
        (0.005..0.04).contains(&med_s),
    );

    let f1 = summary::figure1(&a5.cds);
    let rate_of = |cat: ClientCategory| {
        f1.iter()
            .find(|(c, _, _)| *c == cat)
            .map(|(_, r, _)| *r)
            .unwrap_or(0.0)
    };
    let pl = rate_of(ClientCategory::PlanetLab);
    let du = rate_of(ClientCategory::Dialup);
    let bb = rate_of(ClientCategory::Broadband);
    let cn = rate_of(ClientCategory::CorpNet);
    push("PL failure rate", pct2(p.pl_failure_rate), pct2(pl), (0.018..0.042).contains(&pl));
    push("BB failure rate", pct2(p.bb_failure_rate), pct2(bb), (0.007..0.022).contains(&bb));
    push("DU failure rate", pct2(p.du_failure_rate), pct2(du), (0.003..0.013).contains(&du));
    push("CN failure rate", pct2(p.cn_failure_rate), pct2(cn), (0.004..0.016).contains(&cn));
    push(
        "ordering DU < CN ≤ BB < PL",
        "holds".into(),
        format!("{} / {} / {} / {}", pct2(du), pct2(cn), pct2(bb), pct2(pl)),
        du < bb && bb < pl && du < cn,
    );

    let b = summary::overall_breakdown(&a5.cds);
    push(
        "DNS share of failures",
        format!("{}–{}", pct(p.dns_share_low), pct(p.dns_share_high)),
        pct(b.dns_share()),
        (0.28..0.48).contains(&b.dns_share()),
    );
    push(
        "TCP share of failures",
        format!("{}–{}", pct(p.tcp_share_low), pct(p.tcp_share_high)),
        pct(b.tcp_share()),
        (0.50..0.70).contains(&b.tcp_share()),
    );
    push(
        "HTTP share of failures",
        format!("<{}", pct(p.http_share_max)),
        pct(b.http_share()),
        b.http_share() < 0.04,
    );

    let pl_dns = dns_analysis::dns_breakdown(ds, ClientCategory::PlanetLab);
    push(
        "PL LDNS-timeout share of DNS failures",
        pct(p.pl_ldns_timeout_share),
        pct(pl_dns.ldns_share()),
        (0.70..0.92).contains(&pl_dns.ldns_share()),
    );
    if let Some(agreement) = dns_analysis::dig_agreement(ds) {
        push(
            "dig agreement on failed lookups",
            format!(">{}", pct(p.dig_agreement_min)),
            pct(agreement),
            agreement > 0.85,
        );
    }

    let pl_tcp = tcp_analysis::tcp_breakdown(ds, ClientCategory::PlanetLab);
    let du_tcp = tcp_analysis::tcp_breakdown(ds, ClientCategory::Dialup);
    let bb_tcp = tcp_analysis::tcp_breakdown(ds, ClientCategory::Broadband);
    push(
        "PL no-connection share of TCP failures",
        pct(p.pl_no_connection_share),
        pct(pl_tcp.no_connection_share()),
        (0.65..0.92).contains(&pl_tcp.no_connection_share()),
    );
    push(
        "DU no-connection share",
        pct(p.du_no_connection_share),
        pct(du_tcp.no_connection_share()),
        (0.45..0.85).contains(&du_tcp.no_connection_share()),
    );
    push(
        "BB no-connection share (rest merged, untraced)",
        pct(p.bb_no_connection_share),
        pct(bb_tcp.no_connection_share()),
        (0.25..0.60).contains(&bb_tcp.no_connection_share()),
    );

    let perm = &a5.permanent;
    push(
        "near-permanent pairs",
        p.permanent_pairs.to_string(),
        perm.len().to_string(),
        (30..=46).contains(&perm.len()),
    );
    push(
        "permanent share of connection failures",
        pct(p.permanent_share_of_connection_failures),
        pct(perm.share_of_connection_failures),
        (0.30..0.70).contains(&perm.share_of_connection_failures),
    );
    push(
        "permanent share of transaction failures",
        pct(p.permanent_share_of_transaction_failures),
        pct(perm.share_of_transaction_failures),
        (0.06..0.25).contains(&perm.share_of_transaction_failures),
    );

    let b5 = blame::table5(a5);
    let b10 = blame::table5(a10);
    push(
        "blame f=5%: server-side",
        pct(p.blame_server_side),
        pct(b5.share(blame::BlameClass::ServerSide)),
        (0.35..0.62).contains(&b5.share(blame::BlameClass::ServerSide)),
    );
    push(
        "blame f=5%: client-side",
        pct(p.blame_client_side),
        pct(b5.share(blame::BlameClass::ClientSide)),
        (0.04..0.20).contains(&b5.share(blame::BlameClass::ClientSide)),
    );
    push(
        "blame f=5%: server-side dominates client-side",
        "yes".into(),
        format!(
            "{} vs {}",
            pct(b5.share(blame::BlameClass::ServerSide)),
            pct(b5.share(blame::BlameClass::ClientSide))
        ),
        b5.share(blame::BlameClass::ServerSide) > 2.0 * b5.share(blame::BlameClass::ClientSide),
    );
    push(
        "blame f=10%: more lands in other",
        format!("{} → {}", pct(p.blame_other), pct(p.blame_other_f10)),
        format!(
            "{} → {}",
            pct(b5.share(blame::BlameClass::Other)),
            pct(b10.share(blame::BlameClass::Other))
        ),
        b10.share(blame::BlameClass::Other) > b5.share(blame::BlameClass::Other),
    );

    let stats = blame::server_episode_stats(a5);
    let scale = f64::from(ds.hours) / 744.0;
    push(
        "server-side episode hours (scaled)",
        format!("{} × {:.2}", p.server_episode_hours, scale),
        stats.total_hours.to_string(),
        (stats.total_hours as f64) > 0.3 * p.server_episode_hours as f64 * scale
            && (stats.total_hours as f64) < 3.0 * p.server_episode_hours as f64 * scale,
    );
    push(
        "servers with ≥1 episode",
        format!("{} / 80", p.servers_with_episode),
        format!("{} / 80", stats.servers_affected),
        (40..=80).contains(&stats.servers_affected),
    );
    push(
        "episode run median is 1 hour",
        "1".into(),
        stats.median_run_hours.to_string(),
        stats.median_run_hours <= 2,
    );

    let t6 = spread::table6(a5);
    let heavy_spreads: Vec<f64> = t6.iter().take(8).map(|r| r.spread()).collect();
    let heavy_ok = heavy_spreads.iter().filter(|s| **s >= 0.6).count() >= heavy_spreads.len() / 2;
    push(
        "spread of top failure-prone servers ≥70%",
        format!("≥{}", pct(p.spread_typical_min)),
        heavy_spreads
            .first()
            .map(|s| pct(*s))
            .unwrap_or_else(|| "n/a".into()),
        heavy_ok,
    );

    let coloc = similarity::colocated_similarities(a5);
    let random = similarity::random_pair_similarities(a5, coloc.len(), 17);
    let mean = |v: &[netprofiler::similarity::PairSimilarity]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().map(|x| x.similarity()).sum::<f64>() / v.len() as f64
        }
    };
    push(
        "co-located pairs more similar than random",
        "yes".into(),
        format!("{} vs {}", pct(mean(&coloc)), pct(mean(&random))),
        mean(&coloc) > mean(&random),
    );

    let rep = replicas::analyze(a5);
    push(
        "zero/single/multi replica sites",
        format!(
            "{}/{}/{}",
            p.zero_replica_sites, p.single_replica_sites, p.multi_replica_sites
        ),
        format!(
            "{}/{}/{}",
            rep.zero_replica_sites, rep.single_replica_sites, rep.multi_replica_sites
        ),
        rep.zero_replica_sites >= 4
            && (36..=48).contains(&rep.single_replica_sites)
            && (26..=38).contains(&rep.multi_replica_sites),
    );
    push(
        "total-replica share of multi-site episodes",
        pct(p.total_replica_share),
        pct(rep.total_share()),
        rep.total_share() > 0.6,
    );
    push(
        "total-replica failures are same-/24",
        "almost all".into(),
        pct(rep.same_subnet_share()),
        rep.same_subnet_share() > 0.8,
    );

    let grid = bgp_corr::prefix_grid(a5);
    let sev = bgp_corr::severe_instability_with_grid(
        a5,
        SeverityRule::Neighbors(a5.config.severe_neighbors),
        &grid,
    );
    push(
        "severe BGP instances (scaled)",
        format!("{} × {:.2}", p.severe_bgp_instances, scale),
        sev.instances.len().to_string(),
        (sev.instances.len() as f64) > 0.3 * p.severe_bgp_instances as f64 * scale,
    );
    push(
        "severe instability ⇒ TCP failures >5%",
        format!(">{}", pct(p.severe_bgp_failure_above_5pct)),
        pct(sev.fraction_above_5pct),
        sev.fraction_above_5pct > 0.6,
    );

    if let Some(r) = loss_corr::loss_failure_correlation(ds, 30) {
        push(
            "loss/failure correlation is weak",
            format!("r≈{:.2}", p.loss_failure_correlation),
            format!("r={r:.2}"),
            r.abs() < 0.45,
        );
    }

    // Table 9 shape on iitb.
    if let Some(site) = ds.sites.iter().find(|s| s.hostname.contains("iitb")) {
        let row = proxy_analysis::residual_rates(a5, site.id);
        let cn_min = row
            .proxied
            .iter()
            .map(|(_, rr)| rr.rate())
            .fold(f64::INFINITY, f64::min);
        let ok = !row.proxied.is_empty()
            && cn_min > 2.0 * row.non_cn.rate()
            && row
                .external
                .as_ref()
                .map(|(_, rr)| rr.rate() < cn_min)
                .unwrap_or(true);
        push(
            "iitb residual: proxied CN ≫ non-CN and SEAEXT",
            format!(
                "CN >{} vs non-CN <{}",
                pct2(p.iitb_cn_residual_min),
                pct2(p.iitb_non_cn_residual_max)
            ),
            format!("CN min {} vs non-CN {}", pct2(cn_min), pct2(row.non_cn.rate())),
            ok,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use model::{ClientId, ProxyId, SiteId};
    use netprofiler::synthetic::SynthWorld;
    use netprofiler::AnalysisConfig;

    fn tiny_ds() -> Dataset {
        let mut w = SynthWorld::new(4, 3, 6);
        w.set_category(ClientId(3), ClientCategory::CorpNet);
        w.set_proxy(ClientId(3), ProxyId(0));
        w.colocate(&[ClientId(0), ClientId(1)], 1);
        for h in 0..6 {
            for c in 0..3u16 {
                w.add_txn_batch(ClientId(c), SiteId(0), h, 20, u32::from(h == 0));
                w.add_conn_batch(ClientId(c), SiteId(0), h, 20, u32::from(h == 0));
            }
            w.add_txn_batch(ClientId(3), SiteId(1), h, 20, 0);
        }
        w.finish()
    }

    #[test]
    fn all_text_renderers_produce_output() {
        let ds = tiny_ds();
        let a5 = Analysis::new(&ds, AnalysisConfig::default());
        let a10 = Analysis::new(&ds, AnalysisConfig::conservative());
        for s in [
            render_table1(&ds),
            render_table2(&ds),
            render_table3(&a5.cds),
            render_figure1(&a5.cds),
            render_table4(&ds),
            render_figure2(&ds),
            render_figure3(&ds),
            render_permanent(&a5),
            render_figure4(&a5),
            render_table5(&a5, &a10),
            render_episode_stats(&a5),
            render_table6(&a5, 5),
            render_table7(&a5, 1),
            render_table8(&a5, 5),
            render_replicas(&a5),
            render_bgp(&a5),
            render_figure6_csv(&a5),
            render_table9(&a5, &["site1"]),
            render_medians(&a5.cds),
            render_loss(&ds),
            render_digcheck(&ds),
        ] {
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn render_all_is_paper_blocks_plus_compare() {
        let ds = tiny_ds();
        let config = AnalysisConfig::default();
        let a5 = Analysis::new(&ds, config);
        let a10 = Analysis::new(&ds, config.with_threshold(0.10));
        let mut expected = String::new();
        for (id, body) in paper_blocks(&ds, &a5, &a10, 7) {
            expected.push_str(&format!("==== {id} ====\n{body}\n"));
        }
        let comps = comparisons(&ds, &a5, &a10);
        expected.push_str(&format!(
            "==== compare ====\n{}\n",
            comps.iter().map(|c| c.line() + "\n").collect::<String>()
        ));
        assert_eq!(render_all(&ds, config, 7), expected);
    }

    #[test]
    fn paper_section_anchors_every_block() {
        let ds = tiny_ds();
        let config = AnalysisConfig::default();
        let a5 = Analysis::new(&ds, config);
        let a10 = Analysis::new(&ds, config.with_threshold(0.10));
        let blocks = paper_blocks(&ds, &a5, &a10, 7);
        let n = blocks.len();
        let mut page = crate::html::HtmlReport::new("t");
        let section = PaperSection { blocks };
        page.add_section(&section);
        let html = page.render();
        assert!(html.contains("id=\"paper-table1\""));
        assert!(html.contains("id=\"paper-digcheck\""));
        assert_eq!(html.matches("<pre>").count(), n);
        // Table text is escaped, never interpreted.
        assert!(!html.contains("≥{"));
    }

    #[test]
    fn table3_marks_cn_masked() {
        let ds = tiny_ds();
        let a = Analysis::new(&ds, AnalysisConfig::default());
        let t3 = render_table3(&a.cds);
        assert!(t3.contains("N/A"));
        assert!(t3.contains("PL"));
    }

    #[test]
    fn timeseries_csv_for_known_client() {
        let ds = tiny_ds();
        let csv = render_client_timeseries_csv(&ds, "client0").unwrap();
        assert!(csv.starts_with("hour,attempts"));
        assert!(csv.lines().count() > 1);
        assert!(render_client_timeseries_csv(&ds, "nosuch").is_none());
    }

    #[test]
    fn comparisons_cover_the_headline_findings() {
        let ds = tiny_ds();
        let a5 = Analysis::new(&ds, AnalysisConfig::default());
        let a10 = Analysis::new(&ds, AnalysisConfig::conservative());
        let comps = comparisons(&ds, &a5, &a10);
        assert!(comps.len() >= 20, "{} comparison lines", comps.len());
        for c in &comps {
            assert!(!c.line().is_empty());
        }
    }
}
