//! Aligned text tables.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Align {
    Left,
    Right,
}

/// A simple monospace table builder.
#[derive(Clone, Debug)]
pub struct TextTable {
    title: Option<String>,
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers (all left-aligned).
    pub fn new<I, S>(headers: I) -> TextTable
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = vec![Align::Left; headers.len()];
        TextTable {
            title: None,
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Set a title printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> TextTable {
        self.title = Some(title.into());
        self
    }

    /// Right-align the given column indices (numbers usually).
    pub fn right_align(mut self, columns: &[usize]) -> TextTable {
        for &c in columns {
            if c < self.aligns.len() {
                self.aligns[c] = Align::Right;
            }
        }
        self
    }

    /// Append a row; short rows are padded with empty cells, long rows
    /// truncated to the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut TextTable
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        row.truncate(self.headers.len());
        self.rows.push(row);
        self
    }

    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if let Some(t) = &self.title {
            let _ = writeln!(out, "{t}");
        }
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let pad = widths[i] - cell.chars().count();
                match self.aligns[i] {
                    Align::Left => {
                        out.push_str(cell);
                        out.extend(std::iter::repeat_n(' ', pad));
                    }
                    Align::Right => {
                        out.extend(std::iter::repeat_n(' ', pad));
                        out.push_str(cell);
                    }
                }
                if i + 1 < cells.len() {
                    out.push_str("  ");
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format a fraction as a percentage with two decimals (for small rates).
pub fn pct2(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Thousands-separated integer.
pub fn count(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::new();
    for (i, ch) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TextTable::new(["name", "value"])
            .with_title("Demo")
            .right_align(&[1]);
        t.row(["alpha", "1"]);
        t.row(["b", "10000"]);
        let s = t.render();
        assert!(s.starts_with("Demo\n"));
        assert!(s.contains("name   value"));
        assert!(s.contains("alpha      1"));
        assert!(s.contains("b      10000"));
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only"]);
        t.row(["x", "y", "z-dropped"]);
        let s = t.render();
        assert!(!s.contains("z-dropped"));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.0147), "1.5%");
        assert_eq!(pct2(0.0147), "1.47%");
        assert_eq!(count(0), "0");
        assert_eq!(count(999), "999");
        assert_eq!(count(16_605_281), "16,605,281");
    }

    #[test]
    fn no_trailing_spaces() {
        let mut t = TextTable::new(["col1", "c2"]);
        t.row(["x", ""]);
        for line in t.render().lines() {
            assert_eq!(line, line.trim_end());
        }
    }
}
