//! Bench-trajectory panel: sparklines over the committed `BENCH_*.json`
//! regression artifacts, so a perf or recall regression is visible at a
//! glance instead of buried in JSON diffs.
//!
//! The panel ingests whatever bench documents the caller hands it (usually
//! the four committed files: baseline, parallel sweep, audit, scenario
//! sweep), parses them with a self-contained minimal JSON reader (the
//! workspace carries no JSON dependency), and renders one sub-panel per
//! document: identity badges plus per-metric series — speedup/efficiency
//! across the thread sweep, detection precision/recall across the audit's
//! detectors, per-archetype recall across the scenario worlds.

use crate::html::{Section, SectionBuilder, Series};

// ---------------------------------------------------------------------------
// Minimal JSON value + parser
// ---------------------------------------------------------------------------

/// A parsed JSON value. Only what the bench artifacts need; numbers are
/// `f64` throughout (every bench figure fits losslessly).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document; `None` on any syntax error or
    /// trailing garbage (the panel then renders an "unparsable" note
    /// instead of failing the report).
    pub fn parse(text: &str) -> Option<Json> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        (pos == bytes.len()).then_some(value)
    }

    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// `get(key)` then `as_f64`, the common path extraction.
    pub fn num(&self, key: &str) -> Option<f64> {
        self.get(key)?.as_f64()
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Option<Json> {
    skip_ws(b, pos);
    match *b.get(*pos)? {
        b'{' => parse_obj(b, pos),
        b'[' => parse_arr(b, pos),
        b'"' => parse_string(b, pos).map(Json::Str),
        b't' => parse_lit(b, pos, "true", Json::Bool(true)),
        b'f' => parse_lit(b, pos, "false", Json::Bool(false)),
        b'n' => parse_lit(b, pos, "null", Json::Null),
        _ => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Option<Json> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Some(value)
    } else {
        None
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Option<Json> {
    let start = *pos;
    if matches!(b.get(*pos), Some(b'-')) {
        *pos += 1;
    }
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()?
        .parse()
        .ok()
        .map(Json::Num)
}

fn parse_string(b: &[u8], pos: &mut usize) -> Option<String> {
    if *b.get(*pos)? != b'"' {
        return None;
    }
    *pos += 1;
    let mut out = Vec::new();
    loop {
        match *b.get(*pos)? {
            b'"' => {
                *pos += 1;
                return String::from_utf8(out).ok();
            }
            b'\\' => {
                *pos += 1;
                match *b.get(*pos)? {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = std::str::from_utf8(b.get(*pos + 1..*pos + 5)?).ok()?;
                        let cp = u32::from_str_radix(hex, 16).ok()?;
                        // Bench artifacts never emit surrogate pairs; a lone
                        // surrogate is a parse error.
                        let ch = char::from_u32(cp)?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            c => {
                out.push(c);
                *pos += 1;
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Option<Json> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if *b.get(*pos)? == b']' {
        *pos += 1;
        return Some(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match *b.get(*pos)? {
            b',' => *pos += 1,
            b']' => {
                *pos += 1;
                return Some(Json::Arr(items));
            }
            _ => return None,
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Option<Json> {
    *pos += 1; // '{'
    let mut members = Vec::new();
    skip_ws(b, pos);
    if *b.get(*pos)? == b'}' {
        *pos += 1;
        return Some(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if *b.get(*pos)? != b':' {
            return None;
        }
        *pos += 1;
        members.push((key, parse_value(b, pos)?));
        skip_ws(b, pos);
        match *b.get(*pos)? {
            b',' => *pos += 1,
            b'}' => {
                *pos += 1;
                return Some(Json::Obj(members));
            }
            _ => return None,
        }
    }
}

// ---------------------------------------------------------------------------
// Panels
// ---------------------------------------------------------------------------

/// One bench document rendered as badges plus metric series.
#[derive(Clone, Debug, Default)]
pub struct Panel {
    pub title: String,
    pub badges: Vec<(String, String)>,
    pub series: Vec<Series>,
    pub notes: Vec<String>,
}

fn fmt(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.4}")
    }
}

fn identity_badges(doc: &Json) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for key in ["scale", "seed", "threads", "cores", "hours"] {
        if let Some(v) = doc.get(key) {
            let text = match v {
                Json::Str(s) => s.clone(),
                Json::Num(n) => fmt(*n),
                other => format!("{other:?}"),
            };
            out.push((key.to_string(), text));
        }
    }
    out
}

/// Build the panel for one named bench document. The name routes to the
/// matching extractor; an unrecognized document still renders its identity
/// badges plus a note.
pub fn bench_panel(name: &str, text: &str) -> Panel {
    let Some(doc) = Json::parse(text) else {
        return Panel {
            title: name.to_string(),
            notes: vec![format!("{name}: unparsable JSON — regenerate the artifact")],
            ..Panel::default()
        };
    };
    let mut panel = Panel {
        title: name.to_string(),
        badges: identity_badges(&doc),
        ..Panel::default()
    };
    if name.contains("parallel") {
        extract_parallel(&doc, &mut panel);
    } else if name.contains("scenario") {
        extract_scenarios(&doc, &mut panel);
    } else if name.contains("audit") {
        extract_audit(&doc, &mut panel);
    } else if name.contains("baseline") {
        extract_baseline(&doc, &mut panel);
    } else {
        panel
            .notes
            .push(format!("{name}: no extractor for this document shape"));
    }
    panel
}

fn extract_baseline(doc: &Json, panel: &mut Panel) {
    for key in [
        "transactions",
        "connections",
        "wall_seconds",
        "events_dispatched",
        "peak_event_queue_depth",
    ] {
        if let Some(v) = doc.num(key) {
            panel.badges.push((key.to_string(), fmt(v)));
        }
    }
}

fn extract_parallel(doc: &Json, panel: &mut Panel) {
    let Some(sweep) = doc.get("sweep").and_then(Json::as_arr) else {
        panel.notes.push("parallel: no sweep array".to_string());
        return;
    };
    for metric in ["speedup", "efficiency", "sim_seconds", "wall_seconds"] {
        let points: Vec<(String, f64)> = sweep
            .iter()
            .filter_map(|e| {
                let t = e.num("threads")?;
                Some((format!("t={}", t as u64), e.num(metric)?))
            })
            .collect();
        if !points.is_empty() {
            panel
                .series
                .push(Series::new(format!("{metric} across thread sweep"), points));
        }
    }
    // Memory axis: columnar bytes per transaction plus the row-layout
    // comparison, rendered as a two-point series so the reduction is
    // visible at a glance alongside the badges.
    if let (Some(col), Some(row)) = (
        doc.num("bytes_per_transaction"),
        doc.num("row_bytes_per_transaction"),
    ) {
        panel.series.push(Series::new(
            "bytes per transaction (row vs columnar)",
            vec![("row".to_string(), row), ("columnar".to_string(), col)],
        ));
    }
    for key in ["dataset_bytes", "bytes_per_transaction", "memory_reduction"] {
        if let Some(v) = doc.num(key) {
            panel.badges.push((key.replace('_', " "), fmt(v)));
        }
    }
    if let Some(Json::Bool(ok)) = doc.get("tables_identical") {
        panel
            .badges
            .push(("tables identical".to_string(), ok.to_string()));
    }
}

fn extract_audit(doc: &Json, panel: &mut Panel) {
    for key in ["agreement", "weighted_agreement"] {
        if let Some(v) = doc.num(key) {
            panel.badges.push((key.replace('_', " "), fmt(v)));
        }
    }
    // Per-class recall from the confusion matrix diagonal.
    if let (Some(labels), Some(matrix)) = (
        doc.get("class_labels").and_then(Json::as_arr),
        doc.get("confusion_matrix").and_then(Json::as_arr),
    ) {
        let points: Vec<(String, f64)> = labels
            .iter()
            .zip(matrix)
            .enumerate()
            .filter_map(|(i, (label, row))| {
                let row = row.as_arr()?;
                let total: f64 = row.iter().filter_map(Json::as_f64).sum();
                if total == 0.0 {
                    return None;
                }
                let diag = row.get(i)?.as_f64()?;
                Some((label.as_str()?.to_string(), diag / total))
            })
            .collect();
        if !points.is_empty() {
            panel
                .series
                .push(Series::new("per-class recall (confusion diagonal)", points));
        }
    }
    for metric in ["precision", "recall"] {
        let points: Vec<(String, f64)> = [
            ("pairs", "permanent_pairs"),
            ("client ep", "client_episode_hours"),
            ("server ep", "server_episode_hours"),
            ("bgp", "severe_bgp"),
        ]
        .iter()
        .filter_map(|(label, key)| Some((label.to_string(), doc.get(key)?.num(metric)?)))
        .collect();
        if !points.is_empty() {
            panel
                .series
                .push(Series::new(format!("detector {metric}"), points));
        }
    }
}

fn extract_scenarios(doc: &Json, panel: &mut Panel) {
    let Some(scenarios) = doc.get("scenarios").and_then(Json::as_arr) else {
        panel.notes.push("scenarios: no scenario array".to_string());
        return;
    };
    let agreement: Vec<(String, f64)> = scenarios
        .iter()
        .filter_map(|s| {
            Some((
                s.get("scenario")?.as_str()?.to_string(),
                s.num("weighted_agreement").or_else(|| s.num("agreement"))?,
            ))
        })
        .collect();
    if !agreement.is_empty() {
        panel
            .series
            .push(Series::new("weighted agreement by world", agreement));
    }
    // Each single-archetype world's own-archetype recall: the headline
    // "can the 2006 pipeline see this fault" trajectory. The combined
    // adversarial-month world contributes its per-archetype recalls as a
    // separate series.
    let own_recall: Vec<(String, f64)> = scenarios
        .iter()
        .filter_map(|s| {
            let world = s.get("scenario")?.as_str()?;
            let archetypes = s.get("archetypes")?.as_arr()?;
            let score = archetypes
                .iter()
                .find(|a| a.get("name").and_then(Json::as_str) == Some(world))?;
            Some((world.to_string(), score.num("recall")?))
        })
        .collect();
    if !own_recall.is_empty() {
        panel
            .series
            .push(Series::new("own-archetype recall by world", own_recall));
    }
    if let Some(month) = scenarios
        .iter()
        .find(|s| s.get("scenario").and_then(Json::as_str) == Some("adversarial-month"))
    {
        let points: Vec<(String, f64)> = month
            .get("archetypes")
            .and_then(Json::as_arr)
            .map(|archetypes| {
                archetypes
                    .iter()
                    .filter_map(|a| {
                        // Only archetypes that actually fired there.
                        (a.num("truth")? > 0.0).then_some(())?;
                        Some((a.get("name")?.as_str()?.to_string(), a.num("recall")?))
                    })
                    .collect()
            })
            .unwrap_or_default();
        if !points.is_empty() {
            panel
                .series
                .push(Series::new("adversarial-month recall by archetype", points));
        }
    }
}

/// The trajectory panel as a report section. `sources` holds
/// `(artifact name, file contents)` pairs for the documents that were
/// found; `missing` names the ones that were not.
pub struct TrajectorySection {
    pub panels: Vec<Panel>,
    pub missing: Vec<String>,
}

impl TrajectorySection {
    /// Build from raw `(name, contents)` sources plus missing-file names.
    pub fn from_sources(sources: &[(String, String)], missing: Vec<String>) -> TrajectorySection {
        TrajectorySection {
            panels: sources
                .iter()
                .map(|(name, text)| bench_panel(name, text))
                .collect(),
            missing,
        }
    }
}

impl Section for TrajectorySection {
    fn id(&self) -> &'static str {
        "trajectory"
    }

    fn title(&self) -> String {
        "Bench trajectory".to_string()
    }

    fn build(&self, out: &mut SectionBuilder) {
        if self.panels.is_empty() {
            out.note("No bench artifacts found — run the bench binaries to generate them.");
        }
        for (i, panel) in self.panels.iter().enumerate() {
            out.subheading(&format!("trajectory-{i}"), &panel.title);
            if !panel.badges.is_empty() {
                out.badges(&panel.badges);
            }
            for s in &panel.series {
                out.sparkline(s);
            }
            for n in &panel.notes {
                out.note(n);
            }
        }
        for name in &self.missing {
            out.note(&format!("{name}: not found — regenerate with the bench suite"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_bench_shapes() {
        let doc = Json::parse(
            "{\"a\": 1, \"b\": [1.5, -2e3, true, null], \"s\": \"x\\\"y\\u0041\", \
             \"o\": {\"k\": \"v\"}}",
        )
        .unwrap();
        assert_eq!(doc.num("a"), Some(1.0));
        let arr = doc.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.5));
        assert_eq!(arr[1].as_f64(), Some(-2000.0));
        assert_eq!(arr[2], Json::Bool(true));
        assert_eq!(arr[3], Json::Null);
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x\"yA"));
        assert_eq!(doc.get("o").unwrap().get("k").unwrap().as_str(), Some("v"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert_eq!(Json::parse("{"), None);
        assert_eq!(Json::parse("{} trailing"), None);
        assert_eq!(Json::parse("{\"k\": }"), None);
        assert_eq!(Json::parse("nope"), None);
        assert_eq!(Json::parse(""), None);
    }

    #[test]
    fn parallel_panel_extracts_sweep_series() {
        let text = "{\"scale\": \"repro\", \"seed\": 1, \"cores\": 1, \
                    \"sweep\": [\
                    {\"threads\": 1, \"sim_seconds\": 10.0, \"speedup\": 1.0, \"efficiency\": 1.0, \"wall_seconds\": 11.0},\
                    {\"threads\": 2, \"sim_seconds\": 6.0, \"speedup\": 1.8, \"efficiency\": 0.9, \"wall_seconds\": 7.0}],\
                    \"tables_identical\": true}";
        let p = bench_panel("BENCH_parallel.json", text);
        let speedup = p
            .series
            .iter()
            .find(|s| s.name.starts_with("speedup"))
            .unwrap();
        assert_eq!(speedup.points.len(), 2);
        assert_eq!(speedup.points[1], ("t=2".to_string(), 1.8));
        assert!(p
            .badges
            .iter()
            .any(|(k, v)| k == "tables identical" && v == "true"));
    }

    #[test]
    fn parallel_panel_extracts_memory_axis() {
        let text = "{\"scale\": \"repro\", \"seed\": 1, \"cores\": 2, \
                    \"dataset_bytes\": 720000000, \"row_dataset_bytes\": 1600000000, \
                    \"bytes_per_transaction\": 43.5, \"row_bytes_per_transaction\": 96.8, \
                    \"memory_reduction\": 2.23, \
                    \"sweep\": [{\"threads\": 1, \"sim_seconds\": 10.0, \"speedup\": 1.0, \
                    \"efficiency\": 1.0, \"wall_seconds\": 11.0}], \
                    \"tables_identical\": true}";
        let p = bench_panel("BENCH_parallel.json", text);
        let mem = p
            .series
            .iter()
            .find(|s| s.name.contains("bytes per transaction"))
            .unwrap();
        assert_eq!(mem.points[0], ("row".to_string(), 96.8));
        assert_eq!(mem.points[1], ("columnar".to_string(), 43.5));
        assert!(p.badges.iter().any(|(k, v)| k == "memory reduction" && v == "2.2300"));
        assert!(p.badges.iter().any(|(k, _)| k == "dataset bytes"));
    }

    #[test]
    fn audit_panel_extracts_diagonal_recall() {
        let text = "{\"scale\": \"quick\", \"agreement\": 0.76, \
                    \"class_labels\": [\"client\", \"server\"], \
                    \"confusion_matrix\": [[8, 2], [0, 0]], \
                    \"permanent_pairs\": {\"precision\": 1.0, \"recall\": 0.9}}";
        let p = bench_panel("BENCH_audit.json", text);
        let recall = p
            .series
            .iter()
            .find(|s| s.name.contains("diagonal"))
            .unwrap();
        // The all-zero server row is skipped, client recall = 0.8.
        assert_eq!(recall.points, vec![("client".to_string(), 0.8)]);
        let det = p.series.iter().find(|s| s.name == "detector recall").unwrap();
        assert_eq!(det.points, vec![("pairs".to_string(), 0.9)]);
    }

    #[test]
    fn scenarios_panel_tracks_own_archetype_recall() {
        let text = "{\"seed\": 1, \"threads\": 7, \"scenarios\": [\
            {\"scenario\": \"censored\", \"agreement\": 0.7, \"weighted_agreement\": 0.78, \
             \"archetypes\": [{\"name\": \"censored\", \"truth\": 10, \"recall\": 0.0}]},\
            {\"scenario\": \"adversarial-month\", \"agreement\": 0.6, \"weighted_agreement\": 0.66, \
             \"archetypes\": [{\"name\": \"censored\", \"truth\": 5, \"recall\": 0.2},\
                              {\"name\": \"wrong-dns\", \"truth\": 0, \"recall\": 1.0}]}]}";
        let p = bench_panel("BENCH_scenarios.json", text);
        let own = p
            .series
            .iter()
            .find(|s| s.name.starts_with("own-archetype"))
            .unwrap();
        assert_eq!(own.points[0], ("censored".to_string(), 0.0));
        let month = p
            .series
            .iter()
            .find(|s| s.name.contains("adversarial-month"))
            .unwrap();
        // wrong-dns never fired (truth 0): excluded.
        assert_eq!(month.points, vec![("censored".to_string(), 0.2)]);
        let agreement = p.series.iter().find(|s| s.name.contains("agreement")).unwrap();
        assert_eq!(agreement.points[0].1, 0.78);
    }

    #[test]
    fn unparsable_and_unknown_sources_degrade_to_notes() {
        let p = bench_panel("BENCH_audit.json", "{nope");
        assert!(p.notes[0].contains("unparsable"));
        let p = bench_panel("BENCH_mystery.json", "{\"seed\": 3}");
        assert!(p.notes[0].contains("no extractor"));
        assert!(p.badges.iter().any(|(k, _)| k == "seed"));
    }

    #[test]
    fn empty_top_level_array_degrades_without_panicking() {
        // A valid document of the wrong shape (array where an object is
        // expected) must render as an empty/noted panel, never panic.
        let p = bench_panel("BENCH_parallel.json", "[]");
        assert_eq!(p.notes, vec!["parallel: no sweep array".to_string()]);
        assert!(p.series.is_empty());
        let p = bench_panel("BENCH_scenarios.json", "[]");
        assert_eq!(p.notes, vec!["scenarios: no scenario array".to_string()]);
        let p = bench_panel("BENCH_audit.json", "[]");
        assert!(p.series.is_empty() && p.badges.is_empty());
    }

    #[test]
    fn truncated_file_reads_as_unparsable() {
        // A partially written artifact (crash mid-flush) must not panic the
        // report — every truncation point of a valid document degrades to
        // the "unparsable" note.
        let full = "{\"scale\": \"quick\", \"sweep\": [{\"threads\": 1, \"speedup\": 1.0}]}";
        for cut in 1..full.len() {
            let p = bench_panel("BENCH_parallel.json", &full[..cut]);
            assert!(
                p.notes[0].contains("unparsable"),
                "cut at {cut} parsed unexpectedly"
            );
        }
    }

    #[test]
    fn overflowing_and_negative_zero_numbers_parse_without_panic() {
        // 1e309 overflows f64 to infinity; Rust's parse accepts it, and the
        // badge formatter must not panic on a non-finite value.
        let doc = Json::parse("{\"transactions\": 1e309, \"wall_seconds\": -0}").unwrap();
        assert_eq!(doc.num("transactions"), Some(f64::INFINITY));
        assert_eq!(doc.num("wall_seconds"), Some(-0.0));
        let p = bench_panel(
            "BENCH_baseline.json",
            "{\"seed\": 1, \"transactions\": 1e309, \"wall_seconds\": -0}",
        );
        assert!(p.badges.iter().any(|(k, v)| k == "transactions" && v == "inf"));
        assert!(p.badges.iter().any(|(k, _)| k == "wall_seconds"));
    }

    #[test]
    fn unknown_keys_are_ignored_not_fatal() {
        let text = "{\"scale\": \"quick\", \"future_field\": {\"nested\": [1, 2]}, \
                    \"sweep\": [{\"threads\": 1, \"speedup\": 1.0, \"novel_metric\": 9}]}";
        let p = bench_panel("BENCH_parallel.json", text);
        assert!(p.notes.is_empty(), "{:?}", p.notes);
        let speedup = p.series.iter().find(|s| s.name.starts_with("speedup")).unwrap();
        assert_eq!(speedup.points, vec![("t=1".to_string(), 1.0)]);
    }

    #[test]
    fn committed_artifacts_parse_end_to_end() {
        // The real committed files must stay ingestible; run from the repo
        // root by the workspace test harness, skip quietly elsewhere.
        for name in [
            "BENCH_baseline.json",
            "BENCH_parallel.json",
            "BENCH_audit.json",
            "BENCH_scenarios.json",
        ] {
            let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(name);
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            let panel = bench_panel(name, &text);
            assert!(
                panel.notes.is_empty(),
                "{name} failed ingestion: {:?}",
                panel.notes
            );
            assert!(!panel.badges.is_empty(), "{name} produced no badges");
        }
    }
}
