//! Forensic drill-down: exemplar traces as timelines and span waterfalls.
//!
//! Two renderings of the same [`TraceExemplar`]:
//!
//! * [`render_timeline`] — the plain-text causal timeline the `explain`
//!   query engine prints: one line per trace event with its offset from the
//!   transaction start, outcome, and ground-truth fault stamp.
//! * [`WaterfallSection`] — the HTML report section that draws each
//!   exemplar as an inline-SVG span waterfall, anchored by
//!   [`anchor`]`(key)` so the audit section's missed-sample drilldowns can
//!   deep-link straight to the trace that explains a miss.
//!
//! Both surfaces truncate with the shared [`crate::caps`] constants and
//! stay self-contained (no scripts, no external fetches).

use crate::caps;
use crate::html::{Section, SectionBuilder, WaterfallRow};
use model::{FaultSet, TraceEvent, TraceExemplar};
use std::fmt::Write as _;

/// The in-page anchor of one exemplar's waterfall figure.
pub fn anchor(key: (u16, u16, u32)) -> String {
    format!("wf-c{}-s{}-h{}", key.0, key.1, key.2)
}

fn truth_label(truth: FaultSet) -> String {
    if truth.is_empty() {
        "-".to_string()
    } else {
        truth.names().join(",")
    }
}

/// Outcome detail without the phase word (the renderings add it: the
/// timeline as its own column, the waterfall tip as a prefix).
fn event_detail(e: &TraceEvent) -> String {
    match e {
        TraceEvent::Dns { host, outcome, .. } => match outcome {
            Ok(()) => format!("{host} ok"),
            Err(kind) => format!("{host} FAILED: {kind}"),
        },
        TraceEvent::Connect {
            replica,
            outcome,
            syn_retransmissions,
            ..
        } => {
            let retx = if *syn_retransmissions > 0 {
                format!(" ({syn_retransmissions} SYN retx)")
            } else {
                String::new()
            };
            match outcome {
                Ok(()) => format!("{replica} ok{retx}"),
                Err(kind) => format!("{replica} FAILED: {kind}{retx}"),
            }
        }
        TraceEvent::Http {
            host,
            status,
            redirect,
            ..
        } => {
            let code = if *status == 0 {
                "no-response".to_string()
            } else {
                status.to_string()
            };
            match redirect {
                Some(next) => format!("{host} {code} -> {next}"),
                None => format!("{host} {code}"),
            }
        }
    }
}

/// The causal timeline of one exemplar as plain text: a header identifying
/// the transaction and its union truth, then one line per trace event with
/// offset, phase, detail, latency, and the truth stamp active at that step.
pub fn render_timeline(x: &TraceExemplar) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "txn c{}->s{}@h{}  start={}s  total={}us  outcome={}  truth=[{}]",
        x.client,
        x.site,
        x.hour,
        x.start.as_secs(),
        x.duration_us,
        if x.failed { "FAIL" } else { "OK" },
        truth_label(x.truth),
    );
    if x.trace.events.is_empty() {
        let _ = writeln!(out, "  (no events captured)");
        return out;
    }
    for e in &x.trace.events {
        let _ = writeln!(
            out,
            "  +{:>9}us  {:<7} {:<52} {:>9}us  truth=[{}]",
            e.at().since(x.start).as_micros(),
            e.phase(),
            event_detail(e),
            e.elapsed().as_micros(),
            truth_label(e.truth()),
        );
    }
    out
}

/// Span rows for one exemplar's waterfall figure, in event order.
pub fn waterfall_rows(x: &TraceExemplar) -> Vec<WaterfallRow> {
    x.trace
        .events
        .iter()
        .map(|e| WaterfallRow {
            label: format!("{} {}", e.phase(), short_target(e)),
            class: if e.failed() { "fail" } else { "ok" },
            start_us: e.at().since(x.start).as_micros(),
            len_us: e.elapsed().as_micros(),
            tip: format!(
                "{} {} ({}us) truth=[{}]",
                e.phase(),
                event_detail(e),
                e.elapsed().as_micros(),
                truth_label(e.truth()),
            ),
        })
        .collect()
}

fn short_target(e: &TraceEvent) -> String {
    match e {
        TraceEvent::Dns { host, .. } | TraceEvent::Http { host, .. } => host.clone(),
        TraceEvent::Connect { replica, .. } => replica.to_string(),
    }
}

/// HTML report section: one span waterfall per exemplar, capped with the
/// shared drilldown constants so a pathological run cannot flood the page.
/// Feed it a deduplicated, deterministically ordered slice (the store's
/// `unique_by_key` output).
pub struct WaterfallSection<'a> {
    pub exemplars: &'a [TraceExemplar],
}

impl Section for WaterfallSection<'_> {
    fn id(&self) -> &'static str {
        "waterfalls"
    }

    fn title(&self) -> String {
        "Forensic trace waterfalls".to_string()
    }

    fn build(&self, out: &mut SectionBuilder) {
        if self.exemplars.is_empty() {
            out.note(
                "No forensic exemplars were captured (tracing off, or no \
                 transactions ran).",
            );
            return;
        }
        out.paragraph(
            "Tail-sampled causal traces: every span is one DNS attempt, TCP \
             connect, or HTTP exchange of the transaction, stamped with the \
             ground-truth faults active at that step. Red spans failed. \
             Audit missed-sample rows link here by (client, site, hour).",
        );
        let cap = caps::MAX_NAMED * caps::MAX_SAMPLES;
        for x in self.exemplars.iter().take(cap) {
            let caption = format!(
                "c{}->s{}@h{} — {} ({}us, truth [{}])",
                x.client,
                x.site,
                x.hour,
                if x.failed { "failed" } else { "slow success" },
                x.duration_us,
                truth_label(x.truth),
            );
            out.waterfall(&anchor(x.key()), &caption, &waterfall_rows(x));
        }
        if self.exemplars.len() > cap {
            out.note(&format!(
                "... (+{} more exemplars not rendered)",
                self.exemplars.len() - cap
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::html::HtmlReport;
    use model::{
        DnsFailureKind, SimDuration, SimTime, TcpFailureKind, TxnTrace,
    };
    use std::net::Ipv4Addr;

    fn exemplar() -> TraceExemplar {
        let start = SimTime::from_secs(7_200);
        TraceExemplar {
            client: 3,
            site: 14,
            hour: 2,
            record_index: 42,
            start,
            duration_us: 2_400_000,
            failed: true,
            truth: FaultSet::CENSORED,
            trace: TxnTrace {
                events: vec![
                    TraceEvent::Dns {
                        host: "www.example.com".to_string(),
                        at: start,
                        elapsed: SimDuration::from_millis(40),
                        outcome: Ok(()),
                        truth: FaultSet::EMPTY,
                    },
                    TraceEvent::Connect {
                        replica: Ipv4Addr::new(10, 0, 0, 1),
                        at: start + SimDuration::from_millis(40),
                        elapsed: SimDuration::from_secs(2),
                        outcome: Err(TcpFailureKind::NoConnection),
                        syn_retransmissions: 3,
                        truth: FaultSet::CENSORED,
                    },
                ],
            },
        }
    }

    #[test]
    fn anchor_is_stable_and_key_derived() {
        assert_eq!(anchor((3, 14, 2)), "wf-c3-s14-h2");
        assert_eq!(anchor(exemplar().key()), "wf-c3-s14-h2");
    }

    #[test]
    fn timeline_orders_events_with_offsets_and_truth() {
        let text = render_timeline(&exemplar());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("txn c3->s14@h2"));
        assert!(lines[0].contains("outcome=FAIL"));
        assert!(lines[0].contains("truth=[censored]"));
        assert!(lines[1].contains("dns"));
        assert!(lines[1].contains("+        0us"));
        assert!(lines[1].contains("truth=[-]"));
        assert!(lines[2].contains("connect 10.0.0.1 FAILED: "));
        assert!(lines[2].contains("(3 SYN retx)"));
        assert!(lines[2].contains("truth=[censored]"));
    }

    #[test]
    fn timeline_handles_empty_trace() {
        let mut x = exemplar();
        x.trace = TxnTrace::default();
        let text = render_timeline(&x);
        assert!(text.contains("no events captured"));
    }

    #[test]
    fn dns_failure_detail_names_the_kind() {
        let mut x = exemplar();
        x.trace.events = vec![TraceEvent::Dns {
            host: "www.example.com".to_string(),
            at: x.start,
            elapsed: SimDuration::from_secs(75),
            outcome: Err(DnsFailureKind::LdnsTimeout),
            truth: FaultSet::EMPTY,
        }];
        let text = render_timeline(&x);
        assert!(text.contains("www.example.com FAILED:"), "{text}");
    }

    #[test]
    fn rows_mark_failed_spans_and_preserve_offsets() {
        let rows = waterfall_rows(&exemplar());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].class, "ok");
        assert_eq!(rows[0].start_us, 0);
        assert_eq!(rows[0].len_us, 40_000);
        assert_eq!(rows[1].class, "fail");
        assert_eq!(rows[1].start_us, 40_000);
        assert_eq!(rows[1].len_us, 2_000_000);
        assert!(rows[1].tip.contains("truth=[censored]"));
    }

    #[test]
    fn section_renders_anchored_svg_waterfalls() {
        let exemplars = vec![exemplar()];
        let mut report = HtmlReport::new("t");
        report.add_section(&WaterfallSection {
            exemplars: &exemplars,
        });
        let html = report.render();
        assert!(html.contains("id=\"wf-c3-s14-h2\""));
        assert!(html.contains("<svg viewBox="));
        assert!(html.contains("wf-fail"));
        assert!(html.contains("Forensic trace waterfalls"));
        assert!(!html.contains("http://"), "self-contained");
    }

    #[test]
    fn empty_section_degrades_to_note() {
        let mut report = HtmlReport::new("t");
        report.add_section(&WaterfallSection { exemplars: &[] });
        let html = report.render();
        assert!(html.contains("No forensic exemplars"));
        assert!(!html.contains("<svg viewBox="));
    }
}
