//! Simulation of one TCP connection.
//!
//! The model is connection-level but packet-faithful where the paper's
//! post-processing looks: every client transmission is captured, and
//! server→client segments are captured when they *arrive* (the client-side
//! vantage point of tcpdump). Retransmissions arise mechanically from
//! per-packet loss: a data segment is retransmitted because either the data
//! or its ACK was lost, so the client-visible trace shows duplicate sequence
//! numbers for ACK-loss cases and nothing for data-loss cases — the same
//! under-count a real client-side capture has.

use crate::packet::{Direction, PacketKind, Trace, TracePacket};
use model::{SimDuration, SimTime, TcpFailureKind};
use netsim::SimRng;

/// Ground-truth server/path condition for the connection attempt.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ServerBehavior {
    /// Normal service: full response delivered (modulo path loss).
    Healthy,
    /// SYNs vanish: host down, or network partition on the path.
    Unreachable,
    /// SYNs answered with RST: no listener / overload policy.
    Refusing,
    /// Handshake completes but the application never responds.
    AcceptNoResponse,
    /// Response stalls after this many bytes (crash/overload mid-transfer).
    StallAfter(u64),
}

/// Path quality between this client and this replica at this instant.
#[derive(Clone, Copy, Debug)]
pub struct PathQuality {
    /// Per-packet loss probability, each direction.
    pub loss: f64,
    /// Mean round-trip time.
    pub rtt: SimDuration,
}

impl Default for PathQuality {
    fn default() -> Self {
        PathQuality {
            loss: 0.005,
            rtt: SimDuration::from_millis(80),
        }
    }
}

/// TCP/client timing parameters.
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// Total SYNs sent before the client gives up (first + retransmissions).
    pub max_syn_attempts: u8,
    /// First SYN retransmission timeout; doubles per attempt (3s, 6s, 12s…).
    pub syn_backoff_base: SimDuration,
    /// The measurement client's idle rule: abort when the connection makes
    /// no progress for this long (Section 3.1: 60 seconds).
    pub idle_timeout: SimDuration,
    /// Retransmission timeout for request/data segments.
    pub rto: SimDuration,
    /// Transmissions per segment before the transfer is declared stalled.
    pub max_segment_attempts: u8,
    /// Maximum segment size for the response body.
    pub mss: u32,
    /// Initial congestion window (segments); doubles per round (slow start).
    pub init_cwnd: u32,
    /// Congestion-window cap (segments).
    pub max_cwnd: u32,
    /// Multiplicative latency jitter sigma.
    pub jitter_sigma: f64,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            max_syn_attempts: 4,
            syn_backoff_base: SimDuration::from_secs(3),
            idle_timeout: SimDuration::from_secs(60),
            rto: SimDuration::from_secs(3),
            max_segment_attempts: 6,
            mss: 1460,
            init_cwnd: 2,
            max_cwnd: 32,
            jitter_sigma: 0.2,
        }
    }
}

/// Everything observed about one simulated connection.
#[derive(Clone, Debug)]
pub struct ConnectionResult {
    /// Ground-truth outcome: `Ok` iff the full response was delivered.
    pub outcome: Result<(), TcpFailureKind>,
    /// Did the SYN handshake complete?
    pub established: bool,
    /// Response bytes that reached the client.
    pub bytes_delivered: u64,
    /// Wall-clock duration of the attempt (including timeout waits).
    pub duration: SimDuration,
    /// SYNs sent beyond the first.
    pub syn_retransmissions: u8,
    /// Request/data transmissions beyond each segment's first (sender-side
    /// ground truth; the trace-visible count can be lower).
    pub retransmissions_sent: u32,
    /// Client-side packet capture, when requested. Always `None` from
    /// [`simulate_connection_into`], where the caller's buffer holds the
    /// packets instead.
    pub trace: Option<Trace>,
}

struct Capture<'a> {
    trace: Option<&'a mut Trace>,
}

impl<'a> Capture<'a> {
    fn new(buffer: Option<&'a mut Trace>) -> Self {
        let mut cap = Capture { trace: buffer };
        if let Some(t) = cap.trace.as_mut() {
            t.clear();
        }
        cap
    }

    fn push(&mut self, time: SimTime, direction: Direction, kind: PacketKind) {
        if let Some(t) = self.trace.as_mut() {
            t.push(TracePacket {
                time,
                direction,
                kind,
            });
        }
    }
}

/// Simulate one connection attempt starting at `start`.
///
/// `response_bytes` is the size of the index object the server would send
/// when healthy. Set `record_trace` to capture the client-side packet trace
/// (the BB clients in the paper ran without capture).
pub fn simulate_connection(
    cfg: &TcpConfig,
    behavior: ServerBehavior,
    path: &PathQuality,
    response_bytes: u64,
    start: SimTime,
    rng: &mut SimRng,
    record_trace: bool,
) -> ConnectionResult {
    let mut buf = record_trace.then(Vec::new);
    let mut res =
        simulate_connection_into(cfg, behavior, path, response_bytes, start, rng, buf.as_mut());
    res.trace = buf;
    res
}

/// [`simulate_connection`] with a caller-owned capture buffer, so the hot
/// path can reuse one allocation across connections. When `capture` is
/// `Some`, the buffer is cleared and filled with the client-side trace; the
/// returned `trace` field is always `None`. The RNG draw sequence is
/// identical to [`simulate_connection`].
pub fn simulate_connection_into(
    cfg: &TcpConfig,
    behavior: ServerBehavior,
    path: &PathQuality,
    response_bytes: u64,
    start: SimTime,
    rng: &mut SimRng,
    capture: Option<&mut Trace>,
) -> ConnectionResult {
    let res = simulate_connection_inner(cfg, behavior, path, response_bytes, start, rng, capture);
    if telemetry::enabled() {
        telemetry::counter!("tcp.connections", 1);
        telemetry::counter!("tcp.syn_retransmissions", u64::from(res.syn_retransmissions));
        telemetry::counter!("tcp.retransmissions_sent", u64::from(res.retransmissions_sent));
        telemetry::histogram!("tcp.duration_us", res.duration.as_micros());
        if let Err(kind) = res.outcome {
            static FAILURES: telemetry::CounterVec<4> = telemetry::CounterVec::new(
                "tcp.failures",
                ["no_connection", "no_response", "partial_response", "no_or_partial_response"],
            );
            FAILURES.add(
                match kind {
                    TcpFailureKind::NoConnection => 0,
                    TcpFailureKind::NoResponse => 1,
                    TcpFailureKind::PartialResponse => 2,
                    TcpFailureKind::NoOrPartialResponse => 3,
                },
                1,
            );
        }
    }
    res
}

fn simulate_connection_inner(
    cfg: &TcpConfig,
    behavior: ServerBehavior,
    path: &PathQuality,
    response_bytes: u64,
    start: SimTime,
    rng: &mut SimRng,
    capture: Option<&mut Trace>,
) -> ConnectionResult {
    let mut cap = Capture::new(capture);
    let mut now = start;
    let rtt = |rng: &mut SimRng| path.rtt * rng.normal(0.0, cfg.jitter_sigma).exp();

    // ---- SYN handshake ---------------------------------------------------
    let mut established = false;
    let mut syn_retx: u8 = 0;
    let mut refused = false;
    for attempt in 0..cfg.max_syn_attempts {
        if attempt > 0 {
            syn_retx += 1;
        }
        cap.push(now, Direction::ClientToServer, PacketKind::Syn);
        let backoff = cfg.syn_backoff_base * (1u64 << attempt);
        // SYN must survive the forward path.
        let syn_arrives = behavior != ServerBehavior::Unreachable && !rng.chance(path.loss);
        if !syn_arrives {
            now += backoff;
            continue;
        }
        if behavior == ServerBehavior::Refusing {
            // RST on the reverse path.
            if rng.chance(path.loss) {
                now += backoff;
                continue;
            }
            let t_rst = now + rtt(rng);
            cap.push(t_rst, Direction::ServerToClient, PacketKind::Rst);
            now = t_rst;
            refused = true;
            break;
        }
        // SYN-ACK on the reverse path.
        if rng.chance(path.loss) {
            now += backoff;
            continue;
        }
        let t_synack = now + rtt(rng);
        cap.push(t_synack, Direction::ServerToClient, PacketKind::SynAck);
        now = t_synack;
        cap.push(now, Direction::ClientToServer, PacketKind::Ack);
        established = true;
        break;
    }

    if !established {
        return ConnectionResult {
            outcome: Err(TcpFailureKind::NoConnection),
            established: false,
            bytes_delivered: 0,
            duration: now - start,
            syn_retransmissions: syn_retx,
            retransmissions_sent: 0,
            trace: None,
        };
    }
    if refused {
        // Counted as established=false even though we got a packet back.
        return ConnectionResult {
            outcome: Err(TcpFailureKind::NoConnection),
            established: false,
            bytes_delivered: 0,
            duration: now - start,
            syn_retransmissions: syn_retx,
            retransmissions_sent: 0,
            trace: None,
        };
    }

    let mut retx_sent: u32 = 0;

    // ---- Request ----------------------------------------------------------
    // The client transmits the HTTP request; every transmission is captured
    // locally. The request is retransmitted on (data or ack) loss.
    let mut request_delivered = false;
    for attempt in 0..cfg.max_segment_attempts {
        if attempt > 0 {
            retx_sent += 1;
            now += cfg.rto;
        }
        cap.push(now, Direction::ClientToServer, PacketKind::Request { seq: 0 });
        if rng.chance(path.loss) {
            continue; // request lost
        }
        if rng.chance(path.loss) {
            // Request arrived, ACK lost: the server has it, but the client
            // retransmits once more before the (piggy-backed) response makes
            // progress evident. Treat as delivered — data will follow.
            request_delivered = true;
            break;
        }
        request_delivered = true;
        break;
    }
    if !request_delivered {
        // Pathological loss: the connection makes no progress; the client's
        // idle rule fires.
        now += cfg.idle_timeout;
        return ConnectionResult {
            outcome: Err(TcpFailureKind::NoResponse),
            established: true,
            bytes_delivered: 0,
            duration: now - start,
            syn_retransmissions: syn_retx,
            retransmissions_sent: retx_sent,
            trace: None,
        };
    }

    // ---- Response ---------------------------------------------------------
    let will_deliver = match behavior {
        ServerBehavior::Healthy => response_bytes,
        ServerBehavior::AcceptNoResponse => 0,
        ServerBehavior::StallAfter(b) => b.min(response_bytes),
        ServerBehavior::Unreachable | ServerBehavior::Refusing => unreachable!("handled above"),
    };
    let stalls = will_deliver < response_bytes;

    if will_deliver == 0 {
        now += cfg.idle_timeout;
        return ConnectionResult {
            outcome: Err(TcpFailureKind::NoResponse),
            established: true,
            bytes_delivered: 0,
            duration: now - start,
            syn_retransmissions: syn_retx,
            retransmissions_sent: retx_sent,
            trace: None,
        };
    }

    let total_segments = will_deliver.div_ceil(u64::from(cfg.mss)) as u32;
    let mut delivered_segments: u32 = 0;
    let mut cwnd = cfg.init_cwnd.max(1);
    let mut transfer_stalled = false;

    'transfer: while delivered_segments < total_segments {
        let in_round = (total_segments - delivered_segments).min(cwnd);
        let round_start = now;
        let mut round_extra = SimDuration::ZERO;
        for i in 0..in_round {
            let seq = delivered_segments + i;
            let mut got_through = false;
            for attempt in 0..cfg.max_segment_attempts {
                if attempt > 0 {
                    retx_sent += 1;
                    round_extra += cfg.rto;
                }
                let arrives = !rng.chance(path.loss);
                if arrives {
                    cap.push(
                        round_start + round_extra,
                        Direction::ServerToClient,
                        PacketKind::Data { seq },
                    );
                    // ACK on the reverse path; loss triggers one spurious
                    // retransmission the client will see as a duplicate.
                    if rng.chance(path.loss) {
                        retx_sent += 1;
                        round_extra += cfg.rto;
                        if !rng.chance(path.loss) {
                            cap.push(
                                round_start + round_extra,
                                Direction::ServerToClient,
                                PacketKind::Data { seq },
                            );
                        }
                    }
                    got_through = true;
                    break;
                }
            }
            if !got_through {
                transfer_stalled = true;
                now = round_start + round_extra;
                break 'transfer;
            }
        }
        delivered_segments += in_round;
        now = round_start + rtt(rng) + round_extra;
        cwnd = (cwnd * 2).min(cfg.max_cwnd);
    }

    let bytes_delivered = (u64::from(delivered_segments) * u64::from(cfg.mss)).min(will_deliver);

    if transfer_stalled || stalls {
        // No further progress: the idle rule ends the transaction.
        now += cfg.idle_timeout;
        let outcome = if bytes_delivered == 0 {
            Err(TcpFailureKind::NoResponse)
        } else {
            Err(TcpFailureKind::PartialResponse)
        };
        return ConnectionResult {
            outcome,
            established: true,
            bytes_delivered,
            duration: now - start,
            syn_retransmissions: syn_retx,
            retransmissions_sent: retx_sent,
            trace: None,
        };
    }

    // Orderly completion.
    cap.push(now, Direction::ServerToClient, PacketKind::Fin);
    cap.push(now, Direction::ClientToServer, PacketKind::Ack);
    ConnectionResult {
        outcome: Ok(()),
        established: true,
        bytes_delivered,
        duration: now - start,
        syn_retransmissions: syn_retx,
        retransmissions_sent: retx_sent,
        trace: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossless() -> PathQuality {
        PathQuality {
            loss: 0.0,
            rtt: SimDuration::from_millis(100),
        }
    }

    fn run(behavior: ServerBehavior, path: PathQuality, bytes: u64, seed: u64) -> ConnectionResult {
        simulate_connection(
            &TcpConfig::default(),
            behavior,
            &path,
            bytes,
            SimTime::from_hours(1),
            &mut SimRng::new(seed),
            true,
        )
    }

    #[test]
    fn healthy_lossless_completes() {
        let r = run(ServerBehavior::Healthy, lossless(), 30_000, 1);
        assert_eq!(r.outcome, Ok(()));
        assert!(r.established);
        assert_eq!(r.bytes_delivered, 30_000);
        assert_eq!(r.syn_retransmissions, 0);
        assert_eq!(r.retransmissions_sent, 0);
        let trace = r.trace.unwrap();
        assert!(trace.iter().any(|p| p.is_syn_ack()));
        assert!(trace.iter().any(|p| matches!(p.kind, PacketKind::Fin)));
        // 30000/1460 = 21 segments
        assert_eq!(trace.iter().filter(|p| p.is_server_data()).count(), 21);
    }

    #[test]
    fn unreachable_is_no_connection_after_backoffs() {
        let r = run(ServerBehavior::Unreachable, lossless(), 30_000, 2);
        assert_eq!(r.outcome, Err(TcpFailureKind::NoConnection));
        assert!(!r.established);
        assert_eq!(r.syn_retransmissions, 3);
        // Backoffs 3 + 6 + 12 + 24 = 45 s.
        assert_eq!(r.duration, SimDuration::from_secs(45));
        let trace = r.trace.unwrap();
        assert_eq!(trace.iter().filter(|p| p.is_syn()).count(), 4);
        assert!(!trace.iter().any(|p| p.is_syn_ack()));
    }

    #[test]
    fn refusing_fails_fast_with_rst() {
        let r = run(ServerBehavior::Refusing, lossless(), 30_000, 3);
        assert_eq!(r.outcome, Err(TcpFailureKind::NoConnection));
        assert!(!r.established);
        assert!(r.duration < SimDuration::from_secs(1), "RST is fast");
        assert!(r.trace.unwrap().iter().any(|p| p.is_rst()));
    }

    #[test]
    fn accept_no_response_waits_idle_timeout() {
        let r = run(ServerBehavior::AcceptNoResponse, lossless(), 30_000, 4);
        assert_eq!(r.outcome, Err(TcpFailureKind::NoResponse));
        assert!(r.established);
        assert_eq!(r.bytes_delivered, 0);
        assert!(r.duration >= SimDuration::from_secs(60));
        let trace = r.trace.unwrap();
        assert!(trace.iter().any(|p| p.is_syn_ack()));
        assert!(!trace.iter().any(|p| p.is_server_data()));
    }

    #[test]
    fn stall_mid_transfer_is_partial_response() {
        let r = run(ServerBehavior::StallAfter(10_000), lossless(), 30_000, 5);
        assert_eq!(r.outcome, Err(TcpFailureKind::PartialResponse));
        assert!(r.established);
        assert!(r.bytes_delivered > 0 && r.bytes_delivered < 30_000);
        assert!(r.duration >= SimDuration::from_secs(60));
        assert!(r.trace.unwrap().iter().any(|p| p.is_server_data()));
    }

    #[test]
    fn stall_at_zero_is_no_response() {
        let r = run(ServerBehavior::StallAfter(0), lossless(), 30_000, 6);
        assert_eq!(r.outcome, Err(TcpFailureKind::NoResponse));
        assert_eq!(r.bytes_delivered, 0);
    }

    #[test]
    fn lossy_path_produces_retransmissions_but_completes() {
        let path = PathQuality {
            loss: 0.05,
            rtt: SimDuration::from_millis(100),
        };
        let mut total_retx = 0u32;
        let mut completed = 0;
        for seed in 0..50 {
            let r = run(ServerBehavior::Healthy, path, 60_000, 100 + seed);
            if r.outcome.is_ok() {
                completed += 1;
                assert_eq!(r.bytes_delivered, 60_000);
            }
            total_retx += r.retransmissions_sent;
        }
        assert!(completed >= 45, "5% loss rarely kills a transfer: {completed}");
        assert!(total_retx > 50, "retransmissions occur: {total_retx}");
    }

    #[test]
    fn total_loss_never_establishes() {
        let path = PathQuality {
            loss: 1.0,
            rtt: SimDuration::from_millis(100),
        };
        let r = run(ServerBehavior::Healthy, path, 10_000, 7);
        assert_eq!(r.outcome, Err(TcpFailureKind::NoConnection));
    }

    #[test]
    fn deterministic_for_seed() {
        let path = PathQuality {
            loss: 0.03,
            rtt: SimDuration::from_millis(80),
        };
        let a = run(ServerBehavior::Healthy, path, 45_000, 42);
        let b = run(ServerBehavior::Healthy, path, 45_000, 42);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.duration, b.duration);
        assert_eq!(a.retransmissions_sent, b.retransmissions_sent);
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn into_reuses_buffer_and_matches_owned() {
        let path = PathQuality {
            loss: 0.03,
            rtt: SimDuration::from_millis(80),
        };
        let mut buf = Vec::new();
        for seed in 0..5 {
            let owned = run(ServerBehavior::Healthy, path, 45_000, 900 + seed);
            let r = simulate_connection_into(
                &TcpConfig::default(),
                ServerBehavior::Healthy,
                &path,
                45_000,
                SimTime::from_hours(1),
                &mut SimRng::new(900 + seed),
                Some(&mut buf),
            );
            assert!(r.trace.is_none(), "borrowed capture leaves trace unset");
            assert_eq!(r.outcome, owned.outcome);
            assert_eq!(r.duration, owned.duration);
            assert_eq!(r.retransmissions_sent, owned.retransmissions_sent);
            assert_eq!(Some(&buf), owned.trace.as_ref(), "stale packets cleared");
        }
    }

    #[test]
    fn duration_scales_with_size() {
        let small = run(ServerBehavior::Healthy, lossless(), 1_000, 8);
        let large = run(ServerBehavior::Healthy, lossless(), 200_000, 8);
        assert!(large.duration > small.duration);
        // Slow start: 200 kB at mss 1460 is 137 segments; with cwnd doubling
        // 2,4,8,16,32,32,... that is ~7 rounds plus handshake.
        assert!(large.duration < SimDuration::from_secs(5));
    }

    #[test]
    fn trace_can_be_disabled() {
        let r = simulate_connection(
            &TcpConfig::default(),
            ServerBehavior::Healthy,
            &lossless(),
            10_000,
            SimTime::ZERO,
            &mut SimRng::new(9),
            false,
        );
        assert!(r.trace.is_none());
        assert_eq!(r.outcome, Ok(()));
    }

    #[test]
    fn trace_times_are_monotonic() {
        let path = PathQuality {
            loss: 0.05,
            rtt: SimDuration::from_millis(100),
        };
        for seed in 0..20 {
            let r = run(ServerBehavior::Healthy, path, 50_000, 300 + seed);
            let trace = r.trace.unwrap();
            for w in trace.windows(2) {
                assert!(w[0].time <= w[1].time, "non-monotonic trace");
            }
        }
    }
}
