//! A connection-level TCP model with packet traces.
//!
//! The paper's clients record a tcpdump/windump trace of every transaction
//! and post-process it to (a) classify TCP connection failures as *no
//! connection* / *no response* / *partial response* and (b) count packet
//! retransmissions (Section 3.5). This crate reproduces both sides:
//!
//! * [`connection`] simulates one TCP connection — the SYN handshake with
//!   the retransmission/backoff schedule, request transmission, and a lossy
//!   windowed data transfer governed by the measurement client's 60-second
//!   idle rule — against a ground-truth [`ServerBehavior`] and
//!   [`PathQuality`], and emits the packet trace;
//! * [`trace`] post-processes a trace exactly the way the paper does,
//!   *without* access to the ground truth: the failure sub-class is inferred
//!   from which packets appear, and the loss count from duplicate sequence
//!   numbers.
//!
//! The unit tests cross-validate the two: for every simulated failure the
//! trace-derived classification must equal the ground-truth outcome.

pub mod connection;
pub mod packet;
pub mod pcap;
pub mod trace;

pub use connection::{
    simulate_connection, simulate_connection_into, ConnectionResult, PathQuality, ServerBehavior,
    TcpConfig,
};
pub use packet::{Direction, PacketKind, Trace, TracePacket};
pub use pcap::{decode_pcap, decode_pcap_salvage, encode_pcap, PcapEndpoints, PcapError, PcapIssue};
pub use trace::{classify_trace, count_retransmissions, TraceVerdict};
