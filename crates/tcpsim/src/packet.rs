//! Packet-trace representation.
//!
//! A deliberately compact model of what tcpdump shows: enough structure for
//! the paper's two post-processing questions (handshake success and
//! retransmission counting) while staying cheap to record at scale.

use model::SimTime;

/// Who sent the packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    ClientToServer,
    ServerToClient,
}

/// The packet kinds the post-processor cares about.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PacketKind {
    /// Client's connection request.
    Syn,
    /// Server's handshake reply.
    SynAck,
    /// Bare acknowledgment.
    Ack,
    /// The HTTP request (client data), with a sequence number.
    Request { seq: u32 },
    /// Response data segment, with a sequence number.
    Data { seq: u32 },
    /// Connection reset.
    Rst,
    /// Orderly close.
    Fin,
}

/// One captured packet. Packets dropped by the network are *not* captured at
/// the receiver; the client-side capture sees everything the client sent and
/// everything that arrived at the client — which is exactly the asymmetry
/// the paper's client-side vantage point has.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TracePacket {
    pub time: SimTime,
    pub direction: Direction,
    pub kind: PacketKind,
}

/// A packet trace of one connection, in capture order.
pub type Trace = Vec<TracePacket>;

/// Convenience predicates used by both the simulator and the tests.
impl TracePacket {
    pub fn is_syn(&self) -> bool {
        matches!(self.kind, PacketKind::Syn)
    }

    pub fn is_syn_ack(&self) -> bool {
        matches!(self.kind, PacketKind::SynAck)
    }

    pub fn is_server_data(&self) -> bool {
        self.direction == Direction::ServerToClient && matches!(self.kind, PacketKind::Data { .. })
    }

    pub fn is_rst(&self) -> bool {
        matches!(self.kind, PacketKind::Rst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        let t = SimTime::ZERO;
        let syn = TracePacket {
            time: t,
            direction: Direction::ClientToServer,
            kind: PacketKind::Syn,
        };
        assert!(syn.is_syn() && !syn.is_syn_ack() && !syn.is_server_data());

        let data = TracePacket {
            time: t,
            direction: Direction::ServerToClient,
            kind: PacketKind::Data { seq: 3 },
        };
        assert!(data.is_server_data());

        let client_data = TracePacket {
            time: t,
            direction: Direction::ClientToServer,
            kind: PacketKind::Data { seq: 3 },
        };
        assert!(!client_data.is_server_data(), "direction matters");
    }
}
