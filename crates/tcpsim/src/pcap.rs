//! Classic libpcap serialization of packet traces.
//!
//! The paper's clients ran tcpdump/windump; this module writes the
//! simulated traces in the same on-disk format (pcap 2.4, LINKTYPE_RAW
//! IPv4), so they can be opened in tcpdump/Wireshark, and parses them back
//! for the round-trip tests. Packets are synthesized as minimal IPv4+TCP
//! headers whose flags/sequence numbers encode the simulated packet kinds.

use crate::packet::{Direction, PacketKind, Trace, TracePacket};
use model::{SimDuration, SimTime};
use std::net::Ipv4Addr;

/// pcap magic (microsecond timestamps, native byte order written as LE).
const PCAP_MAGIC: u32 = 0xA1B2_C3D4;
/// LINKTYPE_RAW: packets begin with the IPv4 header.
const LINKTYPE_RAW: u32 = 101;

const TCP_FIN: u8 = 0x01;
const TCP_SYN: u8 = 0x02;
const TCP_RST: u8 = 0x04;
const TCP_PSH: u8 = 0x08;
const TCP_ACK: u8 = 0x10;

/// Endpoint addresses used when serializing a trace.
#[derive(Clone, Copy, Debug)]
pub struct PcapEndpoints {
    pub client: Ipv4Addr,
    pub server: Ipv4Addr,
    pub client_port: u16,
    pub server_port: u16,
}

impl Default for PcapEndpoints {
    fn default() -> Self {
        PcapEndpoints {
            client: Ipv4Addr::new(10, 0, 0, 10),
            server: Ipv4Addr::new(203, 0, 113, 80),
            client_port: 34_567,
            server_port: 80,
        }
    }
}

/// Errors from pcap parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PcapError {
    Truncated,
    BadMagic(u32),
    BadLinkType(u32),
    BadPacket(&'static str),
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::Truncated => write!(f, "truncated pcap"),
            PcapError::BadMagic(m) => write!(f, "bad pcap magic {m:#010x}"),
            PcapError::BadLinkType(l) => write!(f, "unsupported link type {l}"),
            PcapError::BadPacket(why) => write!(f, "bad packet: {why}"),
        }
    }
}

impl std::error::Error for PcapError {}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encode a trace as a pcap byte buffer.
pub fn encode_pcap(trace: &Trace, endpoints: &PcapEndpoints) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + trace.len() * 56);
    // Global header.
    put_u32(&mut out, PCAP_MAGIC);
    put_u16(&mut out, 2); // major
    put_u16(&mut out, 4); // minor
    put_u32(&mut out, 0); // thiszone
    put_u32(&mut out, 0); // sigfigs
    put_u32(&mut out, 65_535); // snaplen
    put_u32(&mut out, LINKTYPE_RAW);

    for p in trace {
        let packet = encode_packet(p, endpoints);
        put_u32(&mut out, (p.time.as_micros() / 1_000_000) as u32);
        put_u32(&mut out, (p.time.as_micros() % 1_000_000) as u32);
        put_u32(&mut out, packet.len() as u32);
        put_u32(&mut out, packet.len() as u32);
        out.extend_from_slice(&packet);
    }
    out
}

/// Synthesize the IPv4+TCP bytes for one simulated packet.
fn encode_packet(p: &TracePacket, ep: &PcapEndpoints) -> Vec<u8> {
    let (src, dst, sport, dport) = match p.direction {
        Direction::ClientToServer => (ep.client, ep.server, ep.client_port, ep.server_port),
        Direction::ServerToClient => (ep.server, ep.client, ep.server_port, ep.client_port),
    };
    // Flags and a sequence number that encodes the simulated seq.
    let (flags, seq, payload_len): (u8, u32, u16) = match p.kind {
        PacketKind::Syn => (TCP_SYN, 0, 0),
        PacketKind::SynAck => (TCP_SYN | TCP_ACK, 0, 0),
        PacketKind::Ack => (TCP_ACK, 1, 0),
        PacketKind::Request { seq } => (TCP_PSH | TCP_ACK, seq + 1, 64),
        PacketKind::Data { seq } => (TCP_PSH | TCP_ACK, seq + 1, 512),
        PacketKind::Rst => (TCP_RST, 1, 0),
        PacketKind::Fin => (TCP_FIN | TCP_ACK, 1, 0),
    };

    let total_len = 20 + 20 + payload_len;
    let mut out = Vec::with_capacity(usize::from(total_len));
    // IPv4 header (no options).
    out.push(0x45); // version 4, IHL 5
    out.push(0); // DSCP/ECN
    out.extend_from_slice(&total_len.to_be_bytes());
    out.extend_from_slice(&[0, 0]); // identification
    out.extend_from_slice(&[0x40, 0]); // DF, no fragment offset
    out.push(64); // TTL
    out.push(6); // TCP
    out.extend_from_slice(&[0, 0]); // checksum placeholder
    out.extend_from_slice(&src.octets());
    out.extend_from_slice(&dst.octets());
    // Fill the IPv4 header checksum (bytes 10-11).
    let checksum = ipv4_checksum(&out[..20]);
    out[10..12].copy_from_slice(&checksum.to_be_bytes());

    // TCP header.
    out.extend_from_slice(&sport.to_be_bytes());
    out.extend_from_slice(&dport.to_be_bytes());
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(&0u32.to_be_bytes()); // ack number
    out.push(0x50); // data offset 5
    out.push(flags);
    out.extend_from_slice(&8192u16.to_be_bytes()); // window
    out.extend_from_slice(&[0, 0, 0, 0]); // checksum, urgent (left zero)
    out.resize(usize::from(total_len), 0); // payload zeros
    out
}

fn ipv4_checksum(header: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    for chunk in header.chunks(2) {
        let word = u16::from_be_bytes([chunk[0], *chunk.get(1).unwrap_or(&0)]);
        sum += u32::from(word);
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Decode one captured packet (16-byte record header already consumed).
fn decode_packet(
    pkt: &[u8],
    ts_sec: u32,
    ts_usec: u32,
    client: Ipv4Addr,
) -> Result<TracePacket, PcapError> {
    if pkt.len() < 40 || pkt[0] != 0x45 {
        return Err(PcapError::BadPacket("short or non-IPv4"));
    }
    if pkt[9] != 6 {
        return Err(PcapError::BadPacket("not TCP"));
    }
    let src = Ipv4Addr::new(pkt[12], pkt[13], pkt[14], pkt[15]);
    let direction = if src == client {
        Direction::ClientToServer
    } else {
        Direction::ServerToClient
    };
    let tcp = &pkt[20..];
    let seq = u32::from_be_bytes([tcp[4], tcp[5], tcp[6], tcp[7]]);
    let flags = tcp[13];
    let payload = pkt.len() - 40;
    let kind = match flags {
        f if f & TCP_RST != 0 => PacketKind::Rst,
        f if f & TCP_SYN != 0 && f & TCP_ACK != 0 => PacketKind::SynAck,
        f if f & TCP_SYN != 0 => PacketKind::Syn,
        f if f & TCP_FIN != 0 => PacketKind::Fin,
        f if f & TCP_PSH != 0 && payload > 0 => {
            // Our encoder writes seq+1; wrapping keeps hand-crafted
            // packets carrying seq 0 from underflowing.
            if direction == Direction::ClientToServer {
                PacketKind::Request {
                    seq: seq.wrapping_sub(1),
                }
            } else {
                PacketKind::Data {
                    seq: seq.wrapping_sub(1),
                }
            }
        }
        _ => PacketKind::Ack,
    };
    Ok(TracePacket {
        time: SimTime::from_micros(0)
            + SimDuration::from_secs(u64::from(ts_sec))
            + SimDuration::from_micros(u64::from(ts_usec)),
        direction,
        kind,
    })
}

fn u32at(data: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([data[off], data[off + 1], data[off + 2], data[off + 3]])
}

/// Parse a pcap buffer produced by [`encode_pcap`] back into a trace.
///
/// The client address is needed to recover packet directions.
pub fn decode_pcap(data: &[u8], client: Ipv4Addr) -> Result<Trace, PcapError> {
    if data.len() < 24 {
        return Err(PcapError::Truncated);
    }
    let magic = u32at(data, 0);
    if magic != PCAP_MAGIC {
        return Err(PcapError::BadMagic(magic));
    }
    let linktype = u32at(data, 20);
    if linktype != LINKTYPE_RAW {
        return Err(PcapError::BadLinkType(linktype));
    }

    let mut pos = 24;
    let mut trace = Vec::new();
    while pos < data.len() {
        if data.len() - pos < 16 {
            return Err(PcapError::Truncated);
        }
        let ts_sec = u32at(data, pos);
        let ts_usec = u32at(data, pos + 4);
        let incl = u32at(data, pos + 8) as usize;
        pos += 16;
        if data.len() - pos < incl {
            return Err(PcapError::Truncated);
        }
        let pkt = &data[pos..pos + incl];
        pos += incl;
        trace.push(decode_packet(pkt, ts_sec, ts_usec, client)?);
    }
    Ok(trace)
}

/// One quarantined region found while salvage-decoding a pcap buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PcapIssue {
    /// Byte offset of the record header (or garbage run) that failed.
    pub offset: usize,
    pub error: PcapError,
}

impl std::fmt::Display for PcapIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "offset {}: {}", self.offset, self.error)
    }
}

/// Does `pos` look like the start of a pcap record header? Our encoder
/// always writes `incl == orig` and whole IPv4+TCP packets, so a credible
/// header has matching lengths in packet range, fully contained in the
/// input.
fn plausible_record(data: &[u8], pos: usize) -> bool {
    if data.len().saturating_sub(pos) < 16 {
        return false;
    }
    let incl = u32at(data, pos + 8) as usize;
    let orig = u32at(data, pos + 12) as usize;
    incl == orig && (40..=2048).contains(&incl) && pos + 16 + incl <= data.len()
}

/// Lossy parse of a possibly corrupt pcap buffer: skips records that fail
/// to decode, resynchronizes on the next credible record header after a
/// framing error, and reports everything it quarantined. Never fails and
/// never panics; a hopeless input yields `(vec![], issues)`.
pub fn decode_pcap_salvage(data: &[u8], client: Ipv4Addr) -> (Trace, Vec<PcapIssue>) {
    let mut trace = Vec::new();
    let mut issues = Vec::new();
    if data.len() < 24 {
        issues.push(PcapIssue {
            offset: 0,
            error: PcapError::Truncated,
        });
        return (trace, issues);
    }
    // A damaged global header is reported but not fatal: record framing is
    // independent of it, so the packets may still be recoverable.
    let magic = u32at(data, 0);
    if magic != PCAP_MAGIC {
        issues.push(PcapIssue {
            offset: 0,
            error: PcapError::BadMagic(magic),
        });
    }
    let linktype = u32at(data, 20);
    if linktype != LINKTYPE_RAW {
        issues.push(PcapIssue {
            offset: 20,
            error: PcapError::BadLinkType(linktype),
        });
    }

    let mut pos = 24;
    while pos < data.len() {
        if data.len() - pos < 16 {
            issues.push(PcapIssue {
                offset: pos,
                error: PcapError::Truncated,
            });
            break;
        }
        if !plausible_record(data, pos) {
            issues.push(PcapIssue {
                offset: pos,
                error: PcapError::BadPacket("implausible record header"),
            });
            match ((pos + 1)..data.len()).find(|&p| plausible_record(data, p)) {
                Some(next) => {
                    pos = next;
                    continue;
                }
                None => break,
            }
        }
        let ts_sec = u32at(data, pos);
        let ts_usec = u32at(data, pos + 4);
        let incl = u32at(data, pos + 8) as usize;
        let pkt = &data[pos + 16..pos + 16 + incl];
        match decode_packet(pkt, ts_sec, ts_usec, client) {
            Ok(p) => trace.push(p),
            // Framing was sound, only the packet bytes were bad: skip just
            // this record.
            Err(error) => issues.push(PcapIssue { offset: pos, error }),
        }
        pos += 16 + incl;
    }
    (trace, issues)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connection::{simulate_connection, PathQuality, ServerBehavior, TcpConfig};
    use crate::trace::classify_trace;
    use netsim::SimRng;

    fn run_trace(behavior: ServerBehavior, loss: f64, seed: u64) -> Trace {
        let r = simulate_connection(
            &TcpConfig::default(),
            behavior,
            &PathQuality {
                loss,
                rtt: SimDuration::from_millis(80),
            },
            25_000,
            SimTime::from_secs(100),
            &mut SimRng::new(seed),
            true,
        );
        r.trace.unwrap()
    }

    #[test]
    fn roundtrip_preserves_trace_semantics() {
        let ep = PcapEndpoints::default();
        for (behavior, loss, seed) in [
            (ServerBehavior::Healthy, 0.0, 1),
            (ServerBehavior::Healthy, 0.05, 2),
            (ServerBehavior::Unreachable, 0.0, 3),
            (ServerBehavior::Refusing, 0.0, 4),
            (ServerBehavior::AcceptNoResponse, 0.0, 5),
            (ServerBehavior::StallAfter(9_000), 0.0, 6),
        ] {
            let trace = run_trace(behavior, loss, seed);
            let wire = encode_pcap(&trace, &ep);
            let decoded = decode_pcap(&wire, ep.client).unwrap();
            assert_eq!(decoded.len(), trace.len());
            for (a, b) in trace.iter().zip(&decoded) {
                assert_eq!(a.direction, b.direction);
                assert_eq!(a.kind, b.kind, "{behavior:?}");
                // Timestamps survive at microsecond precision.
                assert_eq!(a.time.as_micros(), b.time.as_micros());
            }
            // The post-processor sees the same verdict through the pcap.
            assert_eq!(classify_trace(&trace), classify_trace(&decoded));
        }
    }

    #[test]
    fn header_fields_are_wire_sane() {
        let trace = run_trace(ServerBehavior::Healthy, 0.0, 7);
        let ep = PcapEndpoints::default();
        let wire = encode_pcap(&trace, &ep);
        // Magic + version.
        assert_eq!(&wire[0..4], &0xA1B2_C3D4u32.to_le_bytes());
        assert_eq!(u16::from_le_bytes([wire[4], wire[5]]), 2);
        assert_eq!(u16::from_le_bytes([wire[6], wire[7]]), 4);
        // First packet: IPv4 with valid checksum.
        let pkt = &wire[24 + 16..24 + 16 + 40];
        assert_eq!(pkt[0], 0x45);
        let mut check = 0u32;
        for chunk in pkt[..20].chunks(2) {
            check += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
        }
        while check > 0xFFFF {
            check = (check & 0xFFFF) + (check >> 16);
        }
        assert_eq!(check, 0xFFFF, "IPv4 checksum validates");
    }

    #[test]
    fn empty_trace_is_header_only() {
        let wire = encode_pcap(&Vec::new(), &PcapEndpoints::default());
        assert_eq!(wire.len(), 24);
        let decoded = decode_pcap(&wire, PcapEndpoints::default().client).unwrap();
        assert!(decoded.is_empty());
    }

    /// Byte offsets of each record header in an encoded buffer.
    fn record_offsets(wire: &[u8]) -> Vec<usize> {
        let mut offs = Vec::new();
        let mut pos = 24;
        while pos < wire.len() {
            offs.push(pos);
            let incl = u32at(wire, pos + 8) as usize;
            pos += 16 + incl;
        }
        offs
    }

    #[test]
    fn salvage_on_clean_stream_matches_strict() {
        let ep = PcapEndpoints::default();
        let trace = run_trace(ServerBehavior::Healthy, 0.05, 9);
        let wire = encode_pcap(&trace, &ep);
        let strict = decode_pcap(&wire, ep.client).unwrap();
        let (salvaged, issues) = decode_pcap_salvage(&wire, ep.client);
        assert!(issues.is_empty(), "clean input must not report issues");
        assert_eq!(salvaged, strict);
    }

    #[test]
    fn salvage_skips_a_corrupt_packet_and_keeps_the_rest() {
        let ep = PcapEndpoints::default();
        let trace = run_trace(ServerBehavior::Healthy, 0.0, 10);
        let wire = encode_pcap(&trace, &ep);
        let offs = record_offsets(&wire);
        assert!(offs.len() >= 4, "need a few packets for this test");
        let mut bad = wire.clone();
        // Wreck the IP header of the second packet; framing stays intact.
        bad[offs[1] + 16] = 0xFF;
        assert!(decode_pcap(&bad, ep.client).is_err());
        let (salvaged, issues) = decode_pcap_salvage(&bad, ep.client);
        assert_eq!(salvaged.len(), trace.len() - 1);
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].offset, offs[1]);
        assert!(matches!(issues[0].error, PcapError::BadPacket(_)));
    }

    #[test]
    fn salvage_resyncs_over_injected_garbage() {
        let ep = PcapEndpoints::default();
        let trace = run_trace(ServerBehavior::Healthy, 0.0, 11);
        let wire = encode_pcap(&trace, &ep);
        let offs = record_offsets(&wire);
        assert!(offs.len() >= 4);
        let mut bad = wire[..offs[2]].to_vec();
        bad.extend(std::iter::repeat_n(0xEE, 33));
        bad.extend_from_slice(&wire[offs[2]..]);
        let (salvaged, issues) = decode_pcap_salvage(&bad, ep.client);
        assert_eq!(salvaged.len(), trace.len(), "all real packets recovered");
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].offset, offs[2], "garbage run flagged where it starts");
    }

    #[test]
    fn salvage_of_truncated_capture_keeps_the_prefix() {
        let ep = PcapEndpoints::default();
        let trace = run_trace(ServerBehavior::Healthy, 0.0, 12);
        let wire = encode_pcap(&trace, &ep);
        let offs = record_offsets(&wire);
        assert!(offs.len() >= 4);
        // Cut inside the third record's packet bytes.
        let cut = &wire[..offs[2] + 16 + 7];
        assert_eq!(decode_pcap(cut, ep.client), Err(PcapError::Truncated));
        let (salvaged, issues) = decode_pcap_salvage(cut, ep.client);
        assert_eq!(salvaged.len(), 2);
        assert_eq!(issues.len(), 1);
        assert!(matches!(
            issues[0].error,
            PcapError::Truncated | PcapError::BadPacket(_)
        ));
    }

    #[test]
    fn salvage_recovers_packets_despite_damaged_global_header() {
        let ep = PcapEndpoints::default();
        let trace = run_trace(ServerBehavior::Healthy, 0.0, 13);
        let mut wire = encode_pcap(&trace, &ep);
        wire[0] = 0; // break the magic
        wire[20] = 1; // and the linktype
        assert!(decode_pcap(&wire, ep.client).is_err());
        let (salvaged, issues) = decode_pcap_salvage(&wire, ep.client);
        assert_eq!(salvaged.len(), trace.len());
        assert_eq!(issues.len(), 2);
        assert!(matches!(issues[0].error, PcapError::BadMagic(_)));
        assert!(matches!(issues[1].error, PcapError::BadLinkType(1)));
    }

    #[test]
    fn salvage_of_pure_garbage_yields_nothing_quietly() {
        let garbage = vec![0xABu8; 300];
        let (salvaged, issues) = decode_pcap_salvage(&garbage, Ipv4Addr::new(10, 0, 0, 1));
        assert!(salvaged.is_empty());
        assert!(!issues.is_empty());
    }

    #[test]
    fn zero_seq_payload_packet_does_not_underflow() {
        // Hand-craft a PSH+ACK data packet with seq == 0: the decoder must
        // wrap rather than panic in debug builds.
        let ep = PcapEndpoints::default();
        let mut wire = encode_pcap(&Vec::new(), &ep);
        let mut pkt = vec![0u8; 41];
        pkt[0] = 0x45;
        pkt[9] = 6; // TCP
        pkt[12..16].copy_from_slice(&ep.server.octets());
        pkt[33] = TCP_PSH | TCP_ACK; // tcp[13]
        put_u32(&mut wire, 1); // ts_sec
        put_u32(&mut wire, 0); // ts_usec
        put_u32(&mut wire, pkt.len() as u32); // incl
        put_u32(&mut wire, pkt.len() as u32); // orig
        wire.extend_from_slice(&pkt);
        let decoded = decode_pcap(&wire, ep.client).unwrap();
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0].kind, PacketKind::Data { seq: u32::MAX });
    }

    #[test]
    fn malformed_inputs_error() {
        let ep = PcapEndpoints::default();
        let trace = run_trace(ServerBehavior::Healthy, 0.0, 8);
        let wire = encode_pcap(&trace, &ep);
        assert_eq!(decode_pcap(&wire[..10], ep.client), Err(PcapError::Truncated));
        let mut bad_magic = wire.clone();
        bad_magic[0] = 0;
        assert!(matches!(
            decode_pcap(&bad_magic, ep.client),
            Err(PcapError::BadMagic(_))
        ));
        let mut bad_link = wire.clone();
        bad_link[20] = 1; // ethernet
        assert!(matches!(
            decode_pcap(&bad_link, ep.client),
            Err(PcapError::BadLinkType(1))
        ));
        let truncated = &wire[..wire.len() - 5];
        assert_eq!(decode_pcap(truncated, ep.client), Err(PcapError::Truncated));
    }
}
