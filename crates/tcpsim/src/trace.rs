//! Trace post-processing — the paper's Section 3.5 step (b).
//!
//! Works purely from the captured packets, never from simulator ground
//! truth: connection-failure cause is inferred from which packet kinds
//! appear, and the packet-loss proxy from duplicate sequence numbers.

use crate::packet::{Direction, PacketKind, Trace};
use model::TcpFailureKind;
use std::collections::HashMap;

/// What a trace says about its connection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceVerdict {
    /// Handshake never completed (no SYN-ACK, or RST answered the SYN).
    NoConnection,
    /// Handshake completed; zero response bytes arrived.
    NoResponse,
    /// Some response data arrived but the transfer did not complete.
    PartialResponse,
    /// The full response arrived (orderly FIN observed).
    Complete,
}

impl TraceVerdict {
    /// Map to the failure taxonomy (None for a completed transfer).
    pub fn failure_kind(self) -> Option<TcpFailureKind> {
        match self {
            TraceVerdict::NoConnection => Some(TcpFailureKind::NoConnection),
            TraceVerdict::NoResponse => Some(TcpFailureKind::NoResponse),
            TraceVerdict::PartialResponse => Some(TcpFailureKind::PartialResponse),
            TraceVerdict::Complete => None,
        }
    }
}

/// Classify a connection from its packet trace.
pub fn classify_trace(trace: &Trace) -> TraceVerdict {
    let mut saw_syn_ack = false;
    let mut saw_data = false;
    let mut saw_fin = false;
    for p in trace {
        match (p.direction, p.kind) {
            (Direction::ServerToClient, PacketKind::SynAck) => saw_syn_ack = true,
            (Direction::ServerToClient, PacketKind::Data { .. }) => saw_data = true,
            (Direction::ServerToClient, PacketKind::Fin) => saw_fin = true,
            _ => {}
        }
    }
    if !saw_syn_ack {
        return TraceVerdict::NoConnection;
    }
    if !saw_data {
        return TraceVerdict::NoResponse;
    }
    if !saw_fin {
        return TraceVerdict::PartialResponse;
    }
    TraceVerdict::Complete
}

/// Count retransmissions visible in the trace: `(syn_retx, data_retx)`.
///
/// SYN retransmissions are repeats of the client's SYN; data retransmissions
/// are duplicate `(direction, seq)` pairs among request/data segments. As in
/// a real client-side capture this *under-counts* sender retransmissions
/// whose earlier copies never reached the capture point.
pub fn count_retransmissions(trace: &Trace) -> (u32, u32) {
    let mut syns: u32 = 0;
    let mut seen: HashMap<(bool, u32), u32> = HashMap::new();
    for p in trace {
        match (p.direction, p.kind) {
            (Direction::ClientToServer, PacketKind::Syn) => syns += 1,
            (Direction::ClientToServer, PacketKind::Request { seq }) => {
                *seen.entry((false, seq)).or_insert(0) += 1;
            }
            (Direction::ServerToClient, PacketKind::Data { seq }) => {
                *seen.entry((true, seq)).or_insert(0) += 1;
            }
            _ => {}
        }
    }
    let dupes: u32 = seen.values().map(|c| c.saturating_sub(1)).sum();
    (syns.saturating_sub(1), dupes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connection::{
        simulate_connection, PathQuality, ServerBehavior, TcpConfig,
    };
    use crate::packet::TracePacket;
    use model::{SimDuration, SimTime};
    use netsim::SimRng;

    fn pkt(direction: Direction, kind: PacketKind) -> TracePacket {
        TracePacket {
            time: SimTime::ZERO,
            direction,
            kind,
        }
    }

    #[test]
    fn classify_hand_built_traces() {
        // Only SYNs: no connection.
        let t = vec![pkt(Direction::ClientToServer, PacketKind::Syn)];
        assert_eq!(classify_trace(&t), TraceVerdict::NoConnection);

        // RST answer: still no connection (no SYN-ACK).
        let t = vec![
            pkt(Direction::ClientToServer, PacketKind::Syn),
            pkt(Direction::ServerToClient, PacketKind::Rst),
        ];
        assert_eq!(classify_trace(&t), TraceVerdict::NoConnection);

        // Handshake but no data.
        let t = vec![
            pkt(Direction::ClientToServer, PacketKind::Syn),
            pkt(Direction::ServerToClient, PacketKind::SynAck),
            pkt(Direction::ClientToServer, PacketKind::Ack),
            pkt(Direction::ClientToServer, PacketKind::Request { seq: 0 }),
        ];
        assert_eq!(classify_trace(&t), TraceVerdict::NoResponse);

        // Data but no FIN.
        let mut t2 = t.clone();
        t2.push(pkt(Direction::ServerToClient, PacketKind::Data { seq: 0 }));
        assert_eq!(classify_trace(&t2), TraceVerdict::PartialResponse);

        // Complete.
        t2.push(pkt(Direction::ServerToClient, PacketKind::Fin));
        assert_eq!(classify_trace(&t2), TraceVerdict::Complete);
    }

    #[test]
    fn empty_trace_is_no_connection() {
        assert_eq!(classify_trace(&Vec::new()), TraceVerdict::NoConnection);
    }

    #[test]
    fn retransmission_counting() {
        let t = vec![
            pkt(Direction::ClientToServer, PacketKind::Syn),
            pkt(Direction::ClientToServer, PacketKind::Syn),
            pkt(Direction::ClientToServer, PacketKind::Syn),
            pkt(Direction::ServerToClient, PacketKind::SynAck),
            pkt(Direction::ClientToServer, PacketKind::Request { seq: 0 }),
            pkt(Direction::ClientToServer, PacketKind::Request { seq: 0 }),
            pkt(Direction::ServerToClient, PacketKind::Data { seq: 0 }),
            pkt(Direction::ServerToClient, PacketKind::Data { seq: 1 }),
            pkt(Direction::ServerToClient, PacketKind::Data { seq: 1 }),
            pkt(Direction::ServerToClient, PacketKind::Data { seq: 1 }),
        ];
        let (syn, data) = count_retransmissions(&t);
        assert_eq!(syn, 2);
        assert_eq!(data, 1 + 2); // one request dupe + two data dupes
    }

    #[test]
    fn client_and_server_seq_spaces_are_distinct() {
        let t = vec![
            pkt(Direction::ClientToServer, PacketKind::Request { seq: 0 }),
            pkt(Direction::ServerToClient, PacketKind::Data { seq: 0 }),
        ];
        let (_, data) = count_retransmissions(&t);
        assert_eq!(data, 0, "same seq in different directions is not a dupe");
    }

    /// The cross-validation at the heart of this crate: over many random
    /// scenarios, the verdict inferred from the trace must agree with the
    /// simulator's ground-truth outcome.
    #[test]
    fn trace_classification_matches_ground_truth() {
        let cfg = TcpConfig::default();
        let behaviors = [
            ServerBehavior::Healthy,
            ServerBehavior::Unreachable,
            ServerBehavior::Refusing,
            ServerBehavior::AcceptNoResponse,
            ServerBehavior::StallAfter(5_000),
            ServerBehavior::StallAfter(0),
        ];
        let mut rng = SimRng::new(77);
        let mut checked = 0;
        for (i, behavior) in behaviors.iter().cycle().take(600).enumerate() {
            let loss = [0.0, 0.01, 0.05][i % 3];
            let path = PathQuality {
                loss,
                rtt: SimDuration::from_millis(60),
            };
            let r = simulate_connection(
                &cfg,
                *behavior,
                &path,
                20_000,
                SimTime::from_hours(1),
                &mut rng,
                true,
            );
            let verdict = classify_trace(r.trace.as_ref().unwrap());
            match r.outcome {
                Ok(()) => assert_eq!(verdict, TraceVerdict::Complete, "case {i} {behavior:?}"),
                Err(kind) => assert_eq!(
                    verdict.failure_kind(),
                    Some(kind),
                    "case {i} {behavior:?} loss {loss}"
                ),
            }
            checked += 1;
        }
        assert_eq!(checked, 600);
    }

    /// Trace-visible retransmissions never exceed sender-side ground truth.
    #[test]
    fn trace_retx_bounded_by_sent_retx() {
        let cfg = TcpConfig::default();
        let path = PathQuality {
            loss: 0.08,
            rtt: SimDuration::from_millis(60),
        };
        let mut rng = SimRng::new(99);
        let mut saw_some = false;
        for _ in 0..100 {
            let r = simulate_connection(
                &cfg,
                ServerBehavior::Healthy,
                &path,
                40_000,
                SimTime::from_hours(2),
                &mut rng,
                true,
            );
            let (syn, data) = count_retransmissions(r.trace.as_ref().unwrap());
            assert_eq!(syn, u32::from(r.syn_retransmissions));
            assert!(
                data <= r.retransmissions_sent,
                "trace {data} > sent {}",
                r.retransmissions_sent
            );
            if data > 0 {
                saw_some = true;
            }
        }
        assert!(saw_some, "8% loss should surface visible duplicates");
    }
}
