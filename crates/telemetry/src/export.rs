//! Snapshots and exporters: human-readable summary, JSONL, Chrome trace.

use crate::metrics;
use crate::span::{self, SpanRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A counter's name and total at snapshot time.
#[derive(Clone, Debug)]
pub struct CounterSnap {
    pub name: String,
    pub value: u64,
}

/// A gauge's name and value at snapshot time.
#[derive(Clone, Debug)]
pub struct GaugeSnap {
    pub name: String,
    pub value: u64,
}

/// One occupied log2 bucket: inclusive value range and sample count.
#[derive(Clone, Copy, Debug)]
pub struct BucketSnap {
    pub lo: u64,
    pub hi: u64,
    pub count: u64,
}

/// A histogram's occupied buckets at snapshot time.
#[derive(Clone, Debug)]
pub struct HistogramSnap {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<BucketSnap>,
}

impl HistogramSnap {
    /// Upper-bound estimate of the `q`-quantile (`0 ≤ q ≤ 1`): the inclusive
    /// top of the bucket the rank falls in (within 2× of the true value).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).floor() as u64;
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen > rank {
                return b.hi;
            }
        }
        self.buckets.last().map(|b| b.hi).unwrap_or(0)
    }

    /// Mean sample value.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Everything the recorder held at one instant.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    pub counters: Vec<CounterSnap>,
    pub gauges: Vec<GaugeSnap>,
    pub histograms: Vec<HistogramSnap>,
    pub spans: Vec<SpanRecord>,
    /// Spans discarded because the bounded store was full.
    pub spans_dropped: u64,
}

/// Per-span-name aggregate: the stage-profile export hook consumed by the
/// HTML report's telemetry section (and anything else that wants a compact
/// "where did the time go" view without walking raw spans).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageProfile {
    /// Static span name, e.g. `"workload.simulate_clients"`.
    pub name: &'static str,
    /// Spans recorded under this name.
    pub count: u64,
    /// Total wall-clock nanoseconds across those spans.
    pub wall_ns_total: u64,
    /// Total simulated microseconds covered (0 when no span under this name
    /// carried a sim range).
    pub sim_us_total: u64,
}

pub(crate) fn take_snapshot() -> Snapshot {
    let mut snap = Snapshot::default();
    metrics::collect_all(&mut snap);
    let (spans, dropped) = span::take_spans();
    snap.spans = spans;
    snap.spans_dropped = dropped;
    snap.counters.sort_by(|a, b| a.name.cmp(&b.name));
    snap.gauges.sort_by(|a, b| a.name.cmp(&b.name));
    snap.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    snap
}

impl Snapshot {
    /// Total of the named counter (0 if it never registered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// Value of the named gauge, if it registered.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The named histogram, if it registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnap> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Number of recorded spans with this name.
    pub fn span_count(&self, name: &str) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }

    /// Aggregate spans by name into [`StageProfile`] rows, sorted by name
    /// (the rendering order of the HTML report's stage bars).
    pub fn stage_profile(&self) -> Vec<StageProfile> {
        let mut agg: BTreeMap<&'static str, StageProfile> = BTreeMap::new();
        for s in &self.spans {
            let e = agg.entry(s.name).or_insert(StageProfile {
                name: s.name,
                count: 0,
                wall_ns_total: 0,
                sim_us_total: 0,
            });
            e.count += 1;
            e.wall_ns_total += s.dur_ns;
            if let (Some(a), Some(b)) = (s.sim_start_us, s.sim_end_us) {
                e.sim_us_total += b.saturating_sub(a);
            }
        }
        agg.into_values().collect()
    }

    /// True when nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// Human-readable run summary: counters, gauges, histogram quantiles,
    /// and per-name span aggregates.
    pub fn render_summary(&self) -> String {
        let mut out = String::from("== telemetry ==\n");
        if self.is_empty() {
            out.push_str("(recorder off or nothing instrumented ran)\n");
            return out;
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            let width = self.counters.iter().map(|c| c.name.len()).max().unwrap_or(0);
            for c in &self.counters {
                let _ = writeln!(out, "  {:width$}  {}", c.name, c.value);
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            let width = self.gauges.iter().map(|g| g.name.len()).max().unwrap_or(0);
            for g in &self.gauges {
                let _ = writeln!(out, "  {:width$}  {}", g.name, g.value);
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (log2 buckets; quantiles are upper bounds):\n");
            for h in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {}  n={} mean={:.1} p50<={} p95<={} p99<={}",
                    h.name,
                    h.count,
                    h.mean(),
                    h.quantile(0.50),
                    h.quantile(0.95),
                    h.quantile(0.99),
                );
            }
        }
        if !self.spans.is_empty() {
            out.push_str("spans (wall time, aggregated by name):\n");
            let mut agg: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
            for s in &self.spans {
                let e = agg.entry(s.name).or_insert((0, 0));
                e.0 += 1;
                e.1 += s.dur_ns;
            }
            for (name, (count, total_ns)) in agg {
                let total_ms = total_ns as f64 / 1e6;
                let _ = writeln!(
                    out,
                    "  {name}  n={count} total={total_ms:.1}ms mean={:.3}ms",
                    total_ms / count as f64,
                );
            }
        }
        if self.spans_dropped > 0 {
            let _ = writeln!(out, "spans dropped (store full): {}", self.spans_dropped);
        }
        out
    }

    /// One JSON object per line: every counter, gauge, histogram, and span.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            let _ = writeln!(
                out,
                "{{\"kind\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
                json_escape(&c.name),
                c.value
            );
        }
        for g in &self.gauges {
            let _ = writeln!(
                out,
                "{{\"kind\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
                json_escape(&g.name),
                g.value
            );
        }
        for h in &self.histograms {
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|b| format!("[{},{},{}]", b.lo, b.hi, b.count))
                .collect();
            // Quantiles ride along so JSONL consumers get the same p50/p95/p99
            // the text summary prints, without re-deriving bucket math.
            let _ = writeln!(
                out,
                "{{\"kind\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\
                 \"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[{}]}}",
                json_escape(&h.name),
                h.count,
                h.sum,
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
                buckets.join(",")
            );
        }
        for s in &self.spans {
            let _ = writeln!(
                out,
                "{{\"kind\":\"span\",\"name\":\"{}\",\"detail\":{},\"tid\":{},\"start_ns\":{},\"dur_ns\":{},\"sim_start_us\":{},\"sim_end_us\":{}}}",
                json_escape(s.name),
                match &s.detail {
                    Some(d) => format!("\"{}\"", json_escape(d)),
                    None => "null".to_string(),
                },
                s.tid,
                s.start_ns,
                s.dur_ns,
                opt_num(s.sim_start_us),
                opt_num(s.sim_end_us),
            );
        }
        out
    }

    /// Chrome `trace_event` JSON (complete `"X"` events, microsecond
    /// timestamps); load in `about:tracing` or <https://ui.perfetto.dev>.
    pub fn to_chrome_trace(&self) -> String {
        let mut events = Vec::with_capacity(self.spans.len());
        for s in &self.spans {
            let cat = s.name.split('.').next().unwrap_or("app");
            let mut args = String::new();
            if let Some(d) = &s.detail {
                let _ = write!(args, "\"detail\":\"{}\"", json_escape(d));
            }
            if let (Some(a), Some(b)) = (s.sim_start_us, s.sim_end_us) {
                if !args.is_empty() {
                    args.push(',');
                }
                let _ = write!(args, "\"sim_start_us\":{a},\"sim_end_us\":{b}");
            }
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{},\"args\":{{{args}}}}}",
                json_escape(s.name),
                json_escape(cat),
                s.start_ns as f64 / 1e3,
                s.dur_ns as f64 / 1e3,
                s.tid,
            ));
        }
        format!("{{\"traceEvents\":[{}]}}\n", events.join(","))
    }
}

fn opt_num(v: Option<u64>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
///
/// Public because it is the one JSON-string escaper in the workspace: the
/// JSONL/Chrome-trace exporters here and the report's hand-rolled
/// `manifest.json` all route hostile names (a site called `a"b\c`, a stage
/// with an embedded newline) through this function.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(counts: &[(u64, u64, u64)]) -> HistogramSnap {
        HistogramSnap {
            name: "h".into(),
            count: counts.iter().map(|c| c.2).sum(),
            sum: 0,
            buckets: counts
                .iter()
                .map(|&(lo, hi, count)| BucketSnap { lo, hi, count })
                .collect(),
        }
    }

    #[test]
    fn quantile_walks_buckets() {
        let h = hist(&[(0, 0, 10), (1, 1, 10), (2, 3, 80)]);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.05), 0);
        assert_eq!(h.quantile(0.15), 1);
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(1.0), 3);
        assert_eq!(hist(&[]).quantile(0.5), 0);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\ny");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn jsonl_histogram_line_carries_quantiles() {
        let snap = Snapshot {
            histograms: vec![HistogramSnap {
                sum: 270,
                ..hist(&[(0, 0, 10), (1, 1, 10), (2, 3, 80)])
            }],
            ..Snapshot::default()
        };
        let line = snap.to_jsonl();
        // Pinned: consumers parse this shape; quantiles match `quantile()`.
        assert_eq!(
            line,
            "{\"kind\":\"histogram\",\"name\":\"h\",\"count\":100,\"sum\":270,\
             \"p50\":3,\"p95\":3,\"p99\":3,\"buckets\":[[0,0,10],[1,1,10],[2,3,80]]}\n"
        );
    }

    #[test]
    fn exporters_escape_hostile_names() {
        let snap = Snapshot {
            counters: vec![CounterSnap {
                name: "evil\"name\\with\nnewline".into(),
                value: 1,
            }],
            spans: vec![SpanRecord {
                name: "stage",
                detail: Some("detail\twith\u{2}control".into()),
                tid: 0,
                start_ns: 0,
                dur_ns: 1,
                sim_start_us: None,
                sim_end_us: None,
            }],
            ..Snapshot::default()
        };
        let jsonl = snap.to_jsonl();
        assert!(jsonl.contains("evil\\\"name\\\\with\\nnewline"));
        assert!(jsonl.contains("detail\\twith\\u0002control"));
        // No raw quote/backslash/control leaks into the JSON strings.
        let trace = snap.to_chrome_trace();
        assert!(trace.contains("detail\\twith\\u0002control"));
        assert!(!trace.contains('\u{2}'));
    }

    #[test]
    fn stage_profile_aggregates_by_name_with_sim_ranges() {
        let snap = Snapshot {
            spans: vec![
                SpanRecord {
                    name: "b.stage",
                    detail: None,
                    tid: 0,
                    start_ns: 0,
                    dur_ns: 100,
                    sim_start_us: Some(10),
                    sim_end_us: Some(30),
                },
                SpanRecord {
                    name: "b.stage",
                    detail: None,
                    tid: 1,
                    start_ns: 50,
                    dur_ns: 200,
                    sim_start_us: None,
                    sim_end_us: None,
                },
                SpanRecord {
                    name: "a.stage",
                    detail: None,
                    tid: 0,
                    start_ns: 0,
                    dur_ns: 7,
                    sim_start_us: None,
                    sim_end_us: None,
                },
            ],
            ..Snapshot::default()
        };
        let profile = snap.stage_profile();
        assert_eq!(profile.len(), 2);
        // Sorted by name.
        assert_eq!(profile[0].name, "a.stage");
        assert_eq!(profile[1].name, "b.stage");
        assert_eq!(profile[1].count, 2);
        assert_eq!(profile[1].wall_ns_total, 300);
        assert_eq!(profile[1].sim_us_total, 20);
        assert!(Snapshot::default().stage_profile().is_empty());
    }

    #[test]
    fn empty_snapshot_renders() {
        let s = Snapshot::default();
        assert!(s.is_empty());
        assert!(s.render_summary().contains("recorder off"));
        assert_eq!(s.to_jsonl(), "");
        assert_eq!(s.to_chrome_trace(), "{\"traceEvents\":[]}\n");
    }
}
