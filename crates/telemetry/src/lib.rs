//! `telemetry` — structured metrics, span tracing, and stage profiling.
//!
//! A zero-dependency measurement substrate for the simulator and the
//! analysis pipeline: static [`Counter`]s / [`Gauge`]s / log2-bucket
//! [`Histogram`]s, plus lightweight [`SpanGuard`] tracing keyed by both
//! wall-clock monotonic time and (optionally) simulation time. Snapshots
//! export as a human-readable summary, a JSONL metric/event dump, or a
//! Chrome-trace-format (`trace_event`) JSON viewable in `about:tracing`.
//!
//! ## Determinism contract
//!
//! The recorder is *observation only*:
//!
//! * it draws no randomness and never feeds anything back into the code it
//!   instruments, so simulation results are bit-identical whether telemetry
//!   is enabled, disabled, or absent;
//! * counters and histograms are plain atomics (sharded to keep
//!   multi-threaded hot paths cheap), so their totals are thread-count
//!   invariant even though increment interleaving is not;
//! * only wall-clock fields (span durations) are nondeterministic, exactly
//!   like the `wall` field of a run report.
//!
//! ## Gating
//!
//! Two gates keep the disabled cost at (near) zero:
//!
//! * **compile time** — without the `enabled` cargo feature, [`enabled()`]
//!   is `const false` and every recording body is optimized out;
//! * **run time** — with the feature compiled in, recording still only
//!   happens after [`enable`]`(true)`; the off path is one relaxed atomic
//!   load and a branch.
//!
//! ## Usage
//!
//! ```
//! telemetry::enable(true);
//! {
//!     let mut span = telemetry::span!("stage.example");
//!     span.set_sim_range(0, 3_600_000_000);
//!     telemetry::counter!("events.handled", 3);
//!     telemetry::histogram!("latency_us", 1234);
//! }
//! let snap = telemetry::snapshot();
//! assert!(snap.counter("events.handled") >= 3);
//! telemetry::enable(false);
//! ```

mod export;
mod metrics;
mod span;

pub use export::{
    json_escape, BucketSnap, CounterSnap, GaugeSnap, HistogramSnap, Snapshot, StageProfile,
};
pub use metrics::{Counter, CounterVec, Gauge, Histogram, Sampler};
pub use span::{SpanGuard, SpanRecord};

#[cfg(feature = "enabled")]
static ENABLED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Is recording active (compiled in *and* switched on)?
#[cfg(feature = "enabled")]
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(std::sync::atomic::Ordering::Relaxed)
}

/// Is recording active? Always `false` in a build without the `enabled`
/// feature, so instrumented call sites fold to no-ops.
#[cfg(not(feature = "enabled"))]
#[inline]
pub const fn enabled() -> bool {
    false
}

/// Switch the recorder on or off at runtime. A no-op (recording stays off)
/// when the `enabled` feature is not compiled in.
pub fn enable(on: bool) {
    #[cfg(feature = "enabled")]
    ENABLED.store(on, std::sync::atomic::Ordering::Relaxed);
    #[cfg(not(feature = "enabled"))]
    let _ = on;
}

/// Take a consistent snapshot of every registered metric and all recorded
/// spans. Cheap enough to call once per run; not meant for hot paths.
pub fn snapshot() -> Snapshot {
    export::take_snapshot()
}

/// Zero all registered metrics and discard all recorded spans. Intended for
/// tests and for separating phases of a long-lived process.
pub fn reset() {
    metrics::reset_all();
    span::reset_spans();
}

/// Increment a named [`Counter`] declared statically at the call site.
#[macro_export]
macro_rules! counter {
    ($name:expr, $n:expr) => {{
        static __TELEMETRY_COUNTER: $crate::Counter = $crate::Counter::new($name);
        __TELEMETRY_COUNTER.add($n);
    }};
}

/// Raise a named peak-tracking [`Gauge`] declared statically at the call
/// site to at least `$v`.
#[macro_export]
macro_rules! gauge_max {
    ($name:expr, $v:expr) => {{
        static __TELEMETRY_GAUGE: $crate::Gauge = $crate::Gauge::new($name);
        __TELEMETRY_GAUGE.record_max($v);
    }};
}

/// Record a value into a named log2-bucket [`Histogram`] declared statically
/// at the call site.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $v:expr) => {{
        static __TELEMETRY_HISTOGRAM: $crate::Histogram = $crate::Histogram::new($name);
        __TELEMETRY_HISTOGRAM.record($v);
    }};
}

/// Open a wall-clock span; the returned [`SpanGuard`] records it when
/// dropped. Bind it (`let _span = ...`) or it closes immediately.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Global state (registry, span store, enable flag) is shared across
    /// tests in this binary; serialize the ones that reset or snapshot.
    static LOCK: Mutex<()> = Mutex::new(());

    fn guarded() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let _g = guarded();
        reset();
        enable(false);
        counter!("test.off", 5);
        histogram!("test.off.h", 9);
        let _s = span!("test.off.span");
        drop(_s);
        let snap = snapshot();
        assert_eq!(snap.counter("test.off"), 0);
        assert!(snap.histogram("test.off.h").is_none_or(|h| h.count == 0));
        assert_eq!(snap.span_count("test.off.span"), 0);
    }

    #[test]
    fn counters_and_histograms_accumulate() {
        let _g = guarded();
        reset();
        enable(true);
        for i in 0..100u64 {
            counter!("test.acc", 2);
            histogram!("test.acc.h", i);
        }
        enable(false);
        let snap = snapshot();
        assert_eq!(snap.counter("test.acc"), 200);
        let h = snap.histogram("test.acc.h").expect("histogram registered");
        assert_eq!(h.count, 100);
        assert_eq!(h.sum, (0..100).sum::<u64>());
        assert!(h.quantile(0.5) >= 32 && h.quantile(0.5) <= 127);
    }

    #[test]
    fn counters_are_thread_safe_and_exact() {
        let _g = guarded();
        reset();
        enable(true);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        counter!("test.mt", 1);
                    }
                });
            }
        });
        enable(false);
        assert_eq!(snapshot().counter("test.mt"), 80_000);
    }

    #[test]
    fn gauge_tracks_peak() {
        let _g = guarded();
        reset();
        enable(true);
        for v in [3u64, 17, 5] {
            gauge_max!("test.peak", v);
        }
        enable(false);
        assert_eq!(snapshot().gauge("test.peak"), Some(17));
    }

    #[test]
    fn spans_record_wall_and_sim_time() {
        let _g = guarded();
        reset();
        enable(true);
        {
            let mut sp = span!("test.span").with_detail(|| "client-7".to_string());
            sp.set_sim_range(10, 20);
        }
        enable(false);
        let snap = snapshot();
        assert_eq!(snap.span_count("test.span"), 1);
        let rec = snap.spans.iter().find(|s| s.name == "test.span").unwrap();
        assert_eq!(rec.detail.as_deref(), Some("client-7"));
        assert_eq!(rec.sim_start_us, Some(10));
        assert_eq!(rec.sim_end_us, Some(20));
    }

    #[test]
    fn sampler_hits_first_and_periodically() {
        let _g = guarded();
        enable(true);
        static S: Sampler = Sampler::new(10);
        let hits = (0..100).filter(|_| S.hit()).count();
        enable(false);
        assert_eq!(hits, 10, "every 10th draw, starting with the first");
        assert!(!S.hit(), "disabled sampler never hits");
    }

    #[test]
    fn exports_are_well_formed() {
        let _g = guarded();
        reset();
        enable(true);
        counter!("test.export.\"quoted\"", 1);
        histogram!("test.export.h", 1000);
        {
            let mut sp = span!("test.export.span");
            sp.set_sim_range(0, 5);
        }
        enable(false);
        let snap = snapshot();
        let summary = snap.render_summary();
        assert!(summary.contains("test.export.h"));
        let jsonl = snap.to_jsonl();
        assert!(jsonl.lines().count() >= 3);
        assert!(jsonl.contains("\\\"quoted\\\""), "strings are JSON-escaped");
        let trace = snap.to_chrome_trace();
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.trim_end().ends_with('}'));
    }

    #[test]
    fn reset_clears_everything() {
        let _g = guarded();
        reset();
        enable(true);
        counter!("test.reset", 7);
        let _s = span!("test.reset.span");
        drop(_s);
        reset();
        enable(false);
        let snap = snapshot();
        assert_eq!(snap.counter("test.reset"), 0);
        assert_eq!(snap.span_count("test.reset.span"), 0);
    }
}
