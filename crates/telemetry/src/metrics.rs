//! Static metric primitives: counters, gauges, histograms, samplers.
//!
//! Every metric is a `static` declared at its call site (usually through the
//! [`counter!`](crate::counter)/[`gauge_max!`](crate::gauge_max)/
//! [`histogram!`](crate::histogram) macros) and registers itself in a global
//! registry on first use, so snapshots see exactly the metrics a run
//! touched. Counters are sharded across cache-line-padded atomics indexed by
//! a per-thread slot, which keeps the 134-client parallel hot path free of
//! cache-line ping-pong.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::Mutex;

use crate::export::{BucketSnap, CounterSnap, GaugeSnap, HistogramSnap, Snapshot};

/// Shard count for counters (power of two).
const SHARDS: usize = 8;

/// Log2 histogram bucket count: bucket 0 holds zeros, bucket `i ≥ 1` holds
/// values in `[2^(i-1), 2^i)`.
const BUCKETS: usize = 65;

/// A cache-line-padded atomic, so neighbouring shards never share a line.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

#[allow(clippy::declare_interior_mutable_const)] // const used only as array-repeat seed
const PADDED_ZERO: PaddedU64 = PaddedU64(AtomicU64::new(0));
#[allow(clippy::declare_interior_mutable_const)]
const ATOMIC_ZERO: AtomicU64 = AtomicU64::new(0);

/// One sharded tally (the storage behind a counter or one label of a
/// counter vector).
struct Shards([PaddedU64; SHARDS]);

#[allow(clippy::declare_interior_mutable_const)]
const SHARDS_ZERO: Shards = Shards([PADDED_ZERO; SHARDS]);

impl Shards {
    #[inline]
    fn add(&self, n: u64) {
        self.0[thread_shard()].0.fetch_add(n, Relaxed);
    }

    fn sum(&self) -> u64 {
        self.0.iter().map(|s| s.0.load(Relaxed)).sum()
    }

    fn reset(&self) {
        for s in &self.0 {
            s.0.store(0, Relaxed);
        }
    }
}

/// Anything the registry can snapshot and zero.
pub(crate) trait Metric: Sync {
    fn collect(&self, snap: &mut Snapshot);
    fn reset(&self);
}

static REGISTRY: Mutex<Vec<&'static dyn Metric>> = Mutex::new(Vec::new());

fn register(registered: &AtomicBool, metric: &'static dyn Metric) {
    if !registered.swap(true, Relaxed) {
        REGISTRY
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(metric);
    }
}

pub(crate) fn collect_all(snap: &mut Snapshot) {
    for m in REGISTRY.lock().unwrap_or_else(|e| e.into_inner()).iter() {
        m.collect(snap);
    }
}

pub(crate) fn reset_all() {
    for m in REGISTRY.lock().unwrap_or_else(|e| e.into_inner()).iter() {
        m.reset();
    }
}

/// Per-thread shard index: threads take the next slot on first use.
#[inline]
fn thread_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    SLOT.with(|s| {
        let mut v = s.get();
        if v == usize::MAX {
            v = NEXT.fetch_add(1, Relaxed) & (SHARDS - 1);
            s.set(v);
        }
        v
    })
}

/// A monotone event counter.
pub struct Counter {
    name: &'static str,
    shards: Shards,
    registered: AtomicBool,
}

impl Counter {
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            shards: SHARDS_ZERO,
            registered: AtomicBool::new(false),
        }
    }

    /// Add `n`. A no-op unless the recorder is compiled in and enabled.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if crate::enabled() {
            register(&self.registered, self);
            self.shards.add(n);
        }
    }

    /// Current total across shards.
    pub fn value(&self) -> u64 {
        self.shards.sum()
    }
}

impl Metric for Counter {
    fn collect(&self, snap: &mut Snapshot) {
        snap.counters.push(CounterSnap {
            name: self.name.to_string(),
            value: self.value(),
        });
    }

    fn reset(&self) {
        self.shards.reset();
    }
}

/// A family of counters sharing a name, one per fixed label. Snapshots
/// expose each cell as `name{label}`.
pub struct CounterVec<const N: usize> {
    name: &'static str,
    labels: [&'static str; N],
    cells: [Shards; N],
    registered: AtomicBool,
}

impl<const N: usize> CounterVec<N> {
    pub const fn new(name: &'static str, labels: [&'static str; N]) -> CounterVec<N> {
        CounterVec {
            name,
            labels,
            cells: [SHARDS_ZERO; N],
            registered: AtomicBool::new(false),
        }
    }

    /// Add `n` to the cell at `idx` (caller maps its enum to an index).
    #[inline]
    pub fn add(&'static self, idx: usize, n: u64) {
        if crate::enabled() {
            register(&self.registered, self);
            self.cells[idx].add(n);
        }
    }

    /// Current total of the cell at `idx`.
    pub fn value(&self, idx: usize) -> u64 {
        self.cells[idx].sum()
    }
}

impl<const N: usize> Metric for CounterVec<N> {
    fn collect(&self, snap: &mut Snapshot) {
        for (label, cell) in self.labels.iter().zip(&self.cells) {
            snap.counters.push(CounterSnap {
                name: format!("{}{{{label}}}", self.name),
                value: cell.sum(),
            });
        }
    }

    fn reset(&self) {
        for c in &self.cells {
            c.reset();
        }
    }
}

/// A peak-tracking gauge (e.g. maximum event-queue depth).
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Gauge {
    pub const fn new(name: &'static str) -> Gauge {
        Gauge {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Raise the gauge to at least `v`.
    #[inline]
    pub fn record_max(&'static self, v: u64) {
        if crate::enabled() {
            register(&self.registered, self);
            self.value.fetch_max(v, Relaxed);
        }
    }

    pub fn value(&self) -> u64 {
        self.value.load(Relaxed)
    }
}

impl Metric for Gauge {
    fn collect(&self, snap: &mut Snapshot) {
        snap.gauges.push(GaugeSnap {
            name: self.name.to_string(),
            value: self.value(),
        });
    }

    fn reset(&self) {
        self.value.store(0, Relaxed);
    }
}

/// A log2-bucket histogram of `u64` samples (latencies in microseconds,
/// sizes in bytes, …). Bucket 0 counts zeros; bucket `i` counts values in
/// `[2^(i-1), 2^i)`, so quantile estimates are upper bounds within 2×.
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    registered: AtomicBool,
}

impl Histogram {
    pub const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            buckets: [ATOMIC_ZERO; BUCKETS],
            sum: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&'static self, v: u64) {
        if crate::enabled() {
            register(&self.registered, self);
            let idx = if v == 0 {
                0
            } else {
                64 - v.leading_zeros() as usize
            };
            self.buckets[idx].fetch_add(1, Relaxed);
            self.sum.fetch_add(v, Relaxed);
        }
    }
}

impl Metric for Histogram {
    fn collect(&self, snap: &mut Snapshot) {
        let mut count = 0u64;
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Relaxed);
            count += c;
            if c > 0 {
                let (lo, hi) = bucket_bounds(i);
                buckets.push(BucketSnap { lo, hi, count: c });
            }
        }
        snap.histograms.push(HistogramSnap {
            name: self.name.to_string(),
            count,
            sum: self.sum.load(Relaxed),
            buckets,
        });
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
        self.sum.store(0, Relaxed);
    }
}

/// Inclusive value range of log2 bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 0)
    } else {
        (1u64 << (i - 1), (1u64 << (i - 1)) | ((1u64 << (i - 1)) - 1))
    }
}

/// A 1-in-`period` sampler for keeping per-transaction span tracing cheap:
/// the first draw always hits, then every `period`-th. Never hits while the
/// recorder is disabled. Sampling decisions depend on call interleaving and
/// are therefore *not* deterministic across thread counts — use only for
/// diagnostics (spans), never to gate simulation behaviour.
pub struct Sampler {
    period: u64,
    n: AtomicU64,
}

impl Sampler {
    pub const fn new(period: u64) -> Sampler {
        assert!(period > 0);
        Sampler {
            period,
            n: AtomicU64::new(0),
        }
    }

    /// Should this occurrence be sampled?
    #[inline]
    pub fn hit(&self) -> bool {
        crate::enabled() && self.n.fetch_add(1, Relaxed).is_multiple_of(self.period)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_contiguous() {
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(1), (1, 1));
        assert_eq!(bucket_bounds(2), (2, 3));
        assert_eq!(bucket_bounds(3), (4, 7));
        for i in 1..BUCKETS - 1 {
            let (_, hi) = bucket_bounds(i);
            let (lo_next, _) = bucket_bounds(i + 1);
            assert_eq!(hi + 1, lo_next, "bucket {i} and {} must touch", i + 1);
        }
        let (_, top) = bucket_bounds(BUCKETS - 1);
        assert_eq!(top, u64::MAX);
    }
}
