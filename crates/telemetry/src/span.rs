//! Span tracing: RAII guards that record wall-clock (and optionally
//! sim-time) intervals into a bounded global store.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Hard cap on stored spans; past it, spans are counted as dropped rather
/// than growing memory without bound. Instrumentation is coarse (stages,
/// client-months, sampled transactions), so a real run stays far below this.
const MAX_SPANS: usize = 1 << 20;

/// One completed span.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Static span name, e.g. `"analysis.blame.table5"`.
    pub name: &'static str,
    /// Optional per-instance detail (a client name, a stage parameter).
    pub detail: Option<String>,
    /// Small per-thread id (assignment order, not OS thread id).
    pub tid: usize,
    /// Wall-clock start, nanoseconds since the process's telemetry epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Simulation-time start (microseconds), when the span covers sim work.
    pub sim_start_us: Option<u64>,
    /// Simulation-time end (microseconds).
    pub sim_end_us: Option<u64>,
}

static SPANS: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Monotonic epoch shared by all spans of the process.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Small dense per-thread id for trace rows.
fn thread_tid() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static TID: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    TID.with(|s| {
        let mut v = s.get();
        if v == usize::MAX {
            v = NEXT.fetch_add(1, Relaxed);
            s.set(v);
        }
        v
    })
}

pub(crate) fn take_spans() -> (Vec<SpanRecord>, u64) {
    let spans = SPANS.lock().unwrap_or_else(|e| e.into_inner()).clone();
    (spans, DROPPED.load(Relaxed))
}

pub(crate) fn reset_spans() {
    SPANS.lock().unwrap_or_else(|e| e.into_inner()).clear();
    DROPPED.store(0, Relaxed);
}

/// An open span; records itself into the global store when dropped. Created
/// by [`span!`](crate::span) or [`SpanGuard::enter`]. When the recorder is
/// off at entry, the guard is inert: no clock read, no allocation, no store.
pub struct SpanGuard {
    name: &'static str,
    detail: Option<String>,
    start_ns: u64,
    sim: (Option<u64>, Option<u64>),
    active: bool,
}

impl SpanGuard {
    /// Open a span named `name` (must be a static string; use
    /// [`with_detail`](Self::with_detail) for dynamic context).
    #[inline]
    pub fn enter(name: &'static str) -> SpanGuard {
        let active = crate::enabled();
        SpanGuard {
            name,
            detail: None,
            start_ns: if active { now_ns() } else { 0 },
            sim: (None, None),
            active,
        }
    }

    /// Attach dynamic detail; the closure only runs when the span is live,
    /// so inactive guards pay no allocation.
    pub fn with_detail<F: FnOnce() -> String>(mut self, f: F) -> SpanGuard {
        if self.active {
            self.detail = Some(f());
        }
        self
    }

    /// Key the span to a simulation-time interval (microseconds) alongside
    /// its wall-clock one.
    pub fn set_sim_range(&mut self, start_us: u64, end_us: u64) {
        if self.active {
            self.sim = (Some(start_us), Some(end_us));
        }
    }

    /// Is this guard actually recording?
    pub fn is_active(&self) -> bool {
        self.active
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let dur_ns = now_ns().saturating_sub(self.start_ns);
        let mut store = SPANS.lock().unwrap_or_else(|e| e.into_inner());
        if store.len() >= MAX_SPANS {
            DROPPED.fetch_add(1, Relaxed);
            return;
        }
        store.push(SpanRecord {
            name: self.name,
            detail: self.detail.take(),
            tid: thread_tid(),
            start_ns: self.start_ns,
            dur_ns,
            sim_start_us: self.sim.0,
            sim_end_us: self.sim.1,
        });
    }
}
