//! The per-vantage fault/topology view a session runs against.

use dnssim::DnsFaults;
use dnswire::DomainName;
use httpsim::Origin;
use model::{FaultSet, SimTime};
use tcpsim::{PathQuality, ServerBehavior};
use std::net::Ipv4Addr;

/// Everything a client (or proxy) vantage point needs to know about the
/// world at an instant. Implementations are built per-client by the
/// experiment's ground-truth fault model, so methods take no client
/// parameter; pair-specific conditions (e.g. the paper's near-permanent
/// client-server blocks) are folded into [`Self::server_behavior`].
///
/// `DnsFaults` is a supertrait: the same view answers the resolver's
/// questions.
pub trait AccessEnvironment: DnsFaults {
    /// Ground-truth condition of the path/server toward `replica` from this
    /// vantage at `t`.
    fn server_behavior(&self, replica: Ipv4Addr, t: SimTime) -> ServerBehavior;

    /// Path quality (loss, RTT) toward `replica` at `t`.
    fn path_quality(&self, replica: Ipv4Addr, t: SimTime) -> PathQuality;

    /// HTTP behaviour of the origin serving `host`, if the host is known.
    fn origin(&self, host: &str) -> Option<&Origin>;

    /// Ground-truth faults affecting *name resolution* of `host` from this
    /// vantage at `t` — the flight recorder's DNS-phase probe.
    ///
    /// This is simulation-only observability: implementations must answer
    /// from materialized fault timelines without drawing randomness or
    /// mutating state, so stamping leaves the RNG draw order bit-identical.
    /// The default (no faults known) keeps simple test environments working.
    fn true_dns_faults(&self, _host: &DomainName, _t: SimTime) -> FaultSet {
        FaultSet::EMPTY
    }

    /// Ground-truth faults affecting a *connection* toward `replica` from
    /// this vantage at `t` — the flight recorder's connect-phase probe.
    ///
    /// Same contract as [`Self::true_dns_faults`]: pure timeline lookups,
    /// no randomness.
    fn true_faults(&self, _replica: Ipv4Addr, _t: SimTime) -> FaultSet {
        FaultSet::EMPTY
    }
}

/// A fully healthy, single-origin environment for tests and examples.
#[derive(Clone, Debug)]
pub struct HealthyEnv {
    pub origin: Origin,
    pub path: PathQuality,
}

impl HealthyEnv {
    pub fn new(origin: Origin) -> Self {
        HealthyEnv {
            origin,
            path: PathQuality::default(),
        }
    }
}

impl DnsFaults for HealthyEnv {}

impl AccessEnvironment for HealthyEnv {
    fn server_behavior(&self, _replica: Ipv4Addr, _t: SimTime) -> ServerBehavior {
        ServerBehavior::Healthy
    }

    fn path_quality(&self, _replica: Ipv4Addr, _t: SimTime) -> PathQuality {
        self.path
    }

    fn origin(&self, host: &str) -> Option<&Origin> {
        // One known origin; a redirect chain's hosts all belong to it.
        let known = self.origin.host.eq_ignore_ascii_case(host)
            || self
                .origin
                .redirect_hosts
                .iter()
                .any(|h| h.eq_ignore_ascii_case(host));
        known.then_some(&self.origin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_env_answers() {
        let env = HealthyEnv::new(Origin::simple("www.example.com", 1000));
        let t = SimTime::ZERO;
        let a = Ipv4Addr::new(10, 0, 0, 1);
        assert_eq!(env.server_behavior(a, t), ServerBehavior::Healthy);
        assert!(env.origin("www.example.com").is_some());
        assert!(env.origin("WWW.EXAMPLE.COM").is_some());
        assert!(env.origin("other.example").is_none());
        assert!(env.client_link_up(t));
    }

    #[test]
    fn redirect_hosts_are_known() {
        let env = HealthyEnv::new(
            Origin::simple("www.example.com", 1000)
                .with_redirects(vec!["example.com".to_string()]),
        );
        assert!(env.origin("example.com").is_some());
    }
}
