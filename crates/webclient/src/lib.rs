//! The measurement client.
//!
//! Reproduces the paper's download procedure (Section 3.4) for one client:
//!
//! 1. flush the local DNS cache (implicit — only the LDNS cache persists),
//! 2. wget-like download of the URL's index object: resolve, connect (with
//!    fail-over across A records and a retry pass), follow redirects, apply
//!    the 60-second idle rule,
//! 3. iterative dig through the hierarchy (run on DNS failure, matching how
//!    the paper *uses* the dig data),
//! 4. record the packet trace (PL/DU clients; BB ran without captures).
//!
//! Corporate (CN) clients instead speak to their caching proxy, which does
//! its own name resolution, never fails over across replica addresses
//! (Section 4.7's shared proxy defect), and masks the upstream failure
//! detail from the client.
//!
//! The output is a [`TransactionObservation`] — everything Section 3.5's
//! performance record holds, minus the identifiers the experiment runner
//! adds.

pub mod env;
pub mod proxy;
pub mod session;

pub use env::AccessEnvironment;
pub use proxy::{ProxyFetch, ProxySession};
pub use session::{ClientSession, ConnObservation, TransactionObservation, WgetConfig};
