//! The corporate caching proxy (Microsoft ISA-style, Section 4.7).
//!
//! Behavioural model distilled from the paper's findings:
//!
//! * the proxy does name resolution itself, with a **persistent DNS cache
//!   the client cannot flush** — masking some DNS failures from the client;
//! * the proxy connects to the **first resolved address only** and does
//!   **not fail over** to alternate replicas ("presumably to minimize
//!   overhead") — the mechanism behind the iitb/royal residual failures of
//!   Table 9;
//! * with the `no-cache` request directive the proxy always fetches from
//!   the origin, so its object cache masks nothing;
//! * the upstream failure *detail* is masked: the client sees only a
//!   gateway-error status.

use crate::env::AccessEnvironment;
use dnssim::{LdnsCache, StubResolver, ZoneTree};
use dnswire::DomainName;
use httpsim::{HttpRequest, HttpResponse, StatusClass};
use model::{DnsFailureKind, SimDuration, SimTime};
use netsim::SimRng;
use std::net::Ipv4Addr;
use tcpsim::{simulate_connection, TcpConfig};

/// Outcome of a proxy-mediated fetch, with the time it took (the client's
/// clock keeps running while the proxy works).
#[derive(Clone, Debug)]
pub enum ProxyFetch {
    Success { bytes: u64, duration: SimDuration },
    /// Upstream resolution failed at the proxy.
    DnsFailed(DnsFailureKind, SimDuration),
    /// Upstream TCP connection failed (first address only — no fail-over).
    ConnectFailed(SimDuration),
    /// Upstream transfer started but did not complete.
    TransferFailed(SimDuration),
    /// Origin returned an HTTP error.
    HttpError(u16, SimDuration),
}

/// One caching proxy's state.
pub struct ProxySession {
    tcp: TcpConfig,
    cache: LdnsCache,
    rng: SimRng,
    max_redirects: u8,
    header_overhead: u64,
    /// Reused A-record buffer (one live allocation per proxy, not one per
    /// fetch).
    addr_scratch: Vec<Ipv4Addr>,
}

impl ProxySession {
    pub fn new(tcp: TcpConfig, rng: SimRng) -> Self {
        ProxySession {
            tcp,
            cache: LdnsCache::new(),
            rng,
            max_redirects: 4,
            header_overhead: 500,
            addr_scratch: Vec::new(),
        }
    }

    /// The proxy's own DNS cache (persists across client accesses).
    pub fn dns_cache(&self) -> &LdnsCache {
        &self.cache
    }

    /// Fetch `host`'s index object on behalf of a client.
    ///
    /// `env` is the *proxy's* vantage (its LDNS, its wide-area paths).
    pub fn fetch<P: AccessEnvironment>(
        &mut self,
        env: &P,
        tree: &ZoneTree,
        host: &DomainName,
        t: SimTime,
        no_cache: bool,
    ) -> ProxyFetch {
        let mut addrs = std::mem::take(&mut self.addr_scratch);
        let out = self.fetch_inner(env, tree, host, t, no_cache, &mut addrs);
        addrs.clear();
        self.addr_scratch = addrs;
        out
    }

    fn fetch_inner<P: AccessEnvironment>(
        &mut self,
        env: &P,
        tree: &ZoneTree,
        host: &DomainName,
        t: SimTime,
        no_cache: bool,
        addrs: &mut Vec<Ipv4Addr>,
    ) -> ProxyFetch {
        let resolver_cfg = dnssim::ResolverConfig::default();
        let resolver = StubResolver::new(tree, resolver_cfg);
        let mut now = t;
        let mut redirect_host: Option<DomainName> = None;
        let mut bytes_total = 0u64;

        for _hop in 0..=self.max_redirects {
            let current = redirect_host.as_ref().unwrap_or(host);
            let resolution =
                resolver.resolve_into(current, env, now, &mut self.rng, &mut self.cache, addrs);
            now += resolution.elapsed;
            if let Err(kind) = resolution.result {
                return ProxyFetch::DnsFailed(kind, now - t);
            }
            // THE defining defect: first address only, no fail-over.
            let addr = addrs[0];

            let host_str = current.to_string();
            let request = HttpRequest::get(&host_str, "/", no_cache);
            let answer = match env.origin(&host_str) {
                Some(origin) => origin.respond(&host_str, &request, &mut self.rng),
                None => httpsim::OriginAnswer {
                    response: HttpResponse::error(404, "Not Found"),
                    next_host: None,
                },
            };
            let wire_bytes = answer.response.body_len + self.header_overhead;

            let behavior = env.server_behavior(addr, now);
            let path = env.path_quality(addr, now);
            let result = simulate_connection(
                &self.tcp,
                behavior,
                &path,
                wire_bytes,
                now,
                &mut self.rng,
                false,
            );
            now += result.duration;
            if result.outcome.is_err() {
                return if result.established {
                    ProxyFetch::TransferFailed(now - t)
                } else {
                    ProxyFetch::ConnectFailed(now - t)
                };
            }
            bytes_total += answer.response.body_len;

            match StatusClass::of(answer.response.status) {
                StatusClass::Success => {
                    return ProxyFetch::Success {
                        bytes: bytes_total,
                        duration: now - t,
                    }
                }
                StatusClass::Redirect => {
                    let next = answer.next_host.expect("redirect carries next host");
                    match next.parse::<DomainName>() {
                        Ok(n) => redirect_host = Some(n),
                        Err(_) => return ProxyFetch::HttpError(502, now - t),
                    }
                }
                _ => return ProxyFetch::HttpError(answer.response.status, now - t),
            }
        }
        ProxyFetch::HttpError(310, now - t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::HealthyEnv;
    use dnssim::DnsFaults;
    use httpsim::Origin;
    use std::net::Ipv4Addr;
    use tcpsim::{PathQuality, ServerBehavior};

    fn name(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn tree() -> ZoneTree {
        ZoneTree::build_for_hosts(&[(
            name("www.iitb.ac.in"),
            vec![
                Ipv4Addr::new(10, 2, 0, 1),
                Ipv4Addr::new(10, 2, 0, 2),
                Ipv4Addr::new(10, 2, 0, 3),
            ],
        )])
    }

    fn proxy(seed: u64) -> ProxySession {
        ProxySession::new(TcpConfig::default(), SimRng::new(seed))
    }

    #[test]
    fn healthy_fetch_succeeds() {
        let tr = tree();
        let env = HealthyEnv::new(Origin::simple("www.iitb.ac.in", 12_000));
        let mut p = proxy(1);
        match p.fetch(&env, &tr, &name("www.iitb.ac.in"), SimTime::from_hours(1), true) {
            ProxyFetch::Success { bytes, duration } => {
                assert_eq!(bytes, 12_000);
                assert!(duration > SimDuration::ZERO);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// First replica dead, others fine — the client-side wget would fail
    /// over and succeed, but the proxy fails. This is Table 9's mechanism.
    struct FirstReplicaDead(HealthyEnv);
    impl DnsFaults for FirstReplicaDead {}
    impl AccessEnvironment for FirstReplicaDead {
        fn server_behavior(&self, r: Ipv4Addr, _t: SimTime) -> ServerBehavior {
            if r == Ipv4Addr::new(10, 2, 0, 1) {
                ServerBehavior::Unreachable
            } else {
                ServerBehavior::Healthy
            }
        }
        fn path_quality(&self, r: Ipv4Addr, t: SimTime) -> PathQuality {
            self.0.path_quality(r, t)
        }
        fn origin(&self, host: &str) -> Option<&Origin> {
            self.0.origin(host)
        }
    }

    #[test]
    fn no_failover_fails_where_wget_succeeds() {
        // One of three replicas is dead. DNS round-robin hands the proxy a
        // random first address and it never fails over, so roughly a third
        // of its fetches fail; wget retries alternate addresses and always
        // succeeds.
        let tr = tree();
        let env = FirstReplicaDead(HealthyEnv::new(Origin::simple("www.iitb.ac.in", 12_000)));
        let mut p = proxy(2);
        let mut failed = 0;
        let mut succeeded = 0;
        for k in 0..40u64 {
            let t = SimTime::from_hours(1) + SimDuration::from_secs(k * 60);
            match p.fetch(&env, &tr, &name("www.iitb.ac.in"), t, true) {
                ProxyFetch::ConnectFailed(_) => failed += 1,
                ProxyFetch::Success { .. } => succeeded += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(failed >= 5, "proxy sometimes picks the dead replica: {failed}");
        assert!(succeeded >= 5, "and sometimes a live one: {succeeded}");

        // Contrast: the direct client succeeds via fail-over, always.
        use crate::session::{ClientSession, WgetConfig};
        let mut s = ClientSession::new(&tr, WgetConfig::default(), SimRng::new(3));
        for k in 0..20u64 {
            let t = SimTime::from_hours(1) + SimDuration::from_secs(k * 60);
            let obs = s.run_transaction(&env, &name("www.iitb.ac.in"), t);
            assert!(obs.outcome.is_success(), "direct wget fails over");
        }
    }

    #[test]
    fn proxy_dns_cache_persists() {
        let tr = tree();
        let env = HealthyEnv::new(Origin::simple("www.iitb.ac.in", 1_000));
        let mut p = proxy(4);
        let t0 = SimTime::from_hours(1);
        p.fetch(&env, &tr, &name("www.iitb.ac.in"), t0, true);
        assert_eq!(p.dns_cache().len(), 1);
        // Second fetch while LDNS is down for the proxy: cache masks it.
        struct ProxyLdnsDown(HealthyEnv);
        impl DnsFaults for ProxyLdnsDown {
            fn auth_up(&self, _z: &DomainName, _t: SimTime) -> bool {
                false
            }
        }
        impl AccessEnvironment for ProxyLdnsDown {
            fn server_behavior(&self, r: Ipv4Addr, t: SimTime) -> ServerBehavior {
                self.0.server_behavior(r, t)
            }
            fn path_quality(&self, r: Ipv4Addr, t: SimTime) -> PathQuality {
                self.0.path_quality(r, t)
            }
            fn origin(&self, host: &str) -> Option<&Origin> {
                self.0.origin(host)
            }
        }
        let env2 = ProxyLdnsDown(HealthyEnv::new(Origin::simple("www.iitb.ac.in", 1_000)));
        match p.fetch(
            &env2,
            &tr,
            &name("www.iitb.ac.in"),
            t0 + SimDuration::from_secs(60),
            true,
        ) {
            ProxyFetch::Success { .. } => {}
            other => panic!("cache should mask the DNS outage: {other:?}"),
        }
    }

    #[test]
    fn http_error_passes_through() {
        let tr = tree();
        let env = HealthyEnv::new(Origin::simple("www.iitb.ac.in", 1_000).with_error_rate(1.0, 500));
        let mut p = proxy(5);
        match p.fetch(&env, &tr, &name("www.iitb.ac.in"), SimTime::from_hours(2), true) {
            ProxyFetch::HttpError(500, _) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
