//! One client's measurement session: the wget-like download procedure.

use crate::env::AccessEnvironment;
use crate::proxy::{ProxyFetch, ProxySession};
use dnssim::{dig_iterative, DigResult, LdnsCache, ResolverConfig, StubResolver, ZoneTree};
use dnswire::DomainName;
use httpsim::{HttpRequest, HttpResponse, StatusClass};
use model::{
    DigOutcome, DnsFailureKind, FailureClass, FaultSet, ProvenanceRecord, SimDuration, SimTime,
    TcpFailureKind, TraceEvent, TransactionOutcome, TxnTrace,
};
use netsim::SimRng;
use tcpsim::{classify_trace, count_retransmissions, simulate_connection_into, TcpConfig, Trace};
use std::net::Ipv4Addr;

/// wget-level policy knobs.
#[derive(Clone, Debug)]
pub struct WgetConfig {
    pub tcp: TcpConfig,
    pub resolver: ResolverConfig,
    /// Capture packet traces (the paper's BB clients could not).
    pub record_traces: bool,
    /// Send `Cache-Control: no-cache` (the CN clients' proxy-busting flag).
    pub no_cache: bool,
    /// Redirect hops wget will follow.
    pub max_redirects: u8,
    /// Hard cap on TCP connection attempts per transaction (wget --tries
    /// analogue).
    pub max_connections: u16,
    /// Time budget for connection retries within one transaction: after the
    /// first full pass over the address list, wget keeps retrying only
    /// while this much time has not elapsed. Fast failures (RSTs from the
    /// paper's blocked pairs) burn many attempts; 45-second SYN timeouts
    /// burn two or three — which is exactly why the 38 near-permanent pairs
    /// are 13% of transaction failures but 50.7% of connection failures in
    /// the paper.
    pub retry_time_budget: SimDuration,
    /// Run the iterative dig only when wget's own resolution failed (the
    /// paper ran it always but *uses* it only for failed lookups; skipping
    /// the healthy case keeps large simulations fast). Disable in tests that
    /// exercise the agreement statistic on successes.
    pub dig_on_failure_only: bool,
    /// Bytes of response headers added on the wire around the index object.
    pub header_overhead: u64,
    /// Round-trip HTTP heads through the text codec.
    pub http_wire_fidelity: bool,
    /// Stamp each observation with the ground-truth faults active during it
    /// (the fault-provenance flight recorder). Probing reads materialized
    /// timelines only, so the RNG draw order — and therefore the dataset —
    /// is bit-identical whether this is on or off.
    pub record_provenance: bool,
    /// Emit a phase-level forensic trace ([`TxnTrace`]) alongside each
    /// observation: every DNS attempt, TCP connect, and HTTP exchange as a
    /// causal event stamped with the faults active at that instant. Capture
    /// reuses the flight-recorder probes (pure lookups, no RNG), so the
    /// dataset stays bit-identical with tracing on or off — and works with
    /// or without `record_provenance`.
    pub forensics: bool,
}

impl Default for WgetConfig {
    fn default() -> Self {
        WgetConfig {
            tcp: TcpConfig::default(),
            resolver: ResolverConfig::default(),
            record_traces: true,
            no_cache: false,
            max_redirects: 4,
            max_connections: 9,
            retry_time_budget: SimDuration::from_secs(90),
            dig_on_failure_only: true,
            header_overhead: 500,
            http_wire_fidelity: true,
            record_provenance: false,
            forensics: false,
        }
    }
}

/// One TCP connection attempt as the record keeper sees it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConnObservation {
    pub replica: Ipv4Addr,
    pub start: SimTime,
    pub outcome: Result<(), TcpFailureKind>,
    pub syn_retransmissions: u8,
    /// Trace-visible data retransmissions (None without capture).
    pub retransmissions: Option<u32>,
}

/// Everything one transaction produced (identifiers are added by the
/// experiment runner).
#[derive(Clone, Debug)]
pub struct TransactionObservation {
    pub start: SimTime,
    pub dns: Result<SimDuration, DnsFailureKind>,
    pub outcome: TransactionOutcome,
    pub replica: Option<Ipv4Addr>,
    pub download_time: Option<SimDuration>,
    pub bytes_received: u64,
    pub connections: Vec<ConnObservation>,
    pub retransmissions: Option<u32>,
    pub dig: DigOutcome,
    /// Ground-truth fault stamp; `Some` only when
    /// [`WgetConfig::record_provenance`] is set.
    pub provenance: Option<ProvenanceRecord>,
    /// Phase-level causal timeline; `Some` only when
    /// [`WgetConfig::forensics`] is set.
    pub trace: Option<TxnTrace>,
}

impl TransactionObservation {
    fn dns_failure(start: SimTime, kind: DnsFailureKind, dig: DigOutcome) -> Self {
        TransactionObservation {
            start,
            dns: Err(kind),
            outcome: TransactionOutcome::Failure(FailureClass::Dns(kind)),
            replica: None,
            download_time: None,
            bytes_received: 0,
            connections: Vec::new(),
            retransmissions: None,
            dig,
            provenance: None,
            trace: None,
        }
    }
}

/// Bump the per-class outcome counters (and the download-time histogram)
/// for one completed transaction.
fn record_transaction_outcome(obs: &TransactionObservation) {
    if !telemetry::enabled() {
        return;
    }
    static OUTCOMES: telemetry::CounterVec<4> = telemetry::CounterVec::new(
        "client.transactions",
        ["ok", "dns_failure", "tcp_failure", "http_failure"],
    );
    OUTCOMES.add(
        match obs.outcome.failure() {
            None => 0,
            Some(FailureClass::Dns(_)) => 1,
            Some(FailureClass::Tcp(_)) => 2,
            Some(FailureClass::Http(_)) => 3,
        },
        1,
    );
    if let Some(d) = obs.download_time {
        telemetry::histogram!("client.download_time_us", d.as_micros());
    }
}

/// Per-client measurement state: the LDNS cache the client talks to, the
/// client's RNG stream, and the wget configuration.
pub struct ClientSession<'t> {
    tree: &'t ZoneTree,
    resolver: StubResolver<'t>,
    config: WgetConfig,
    cache: LdnsCache,
    rng: SimRng,
    /// Reused A-record buffer (one live allocation per session, not one per
    /// lookup).
    addr_scratch: Vec<Ipv4Addr>,
    /// Reused connection-observation buffer, reclaimed via [`Self::recycle`].
    conn_scratch: Vec<ConnObservation>,
    /// Reused packet-capture buffer for [`simulate_connection_into`].
    trace_buf: Trace,
    /// Reused hostname rendering buffer (one live allocation per session,
    /// not one per redirect hop).
    host_scratch: String,
}

impl<'t> ClientSession<'t> {
    pub fn new(tree: &'t ZoneTree, config: WgetConfig, rng: SimRng) -> Self {
        let resolver = StubResolver::new(tree, config.resolver);
        ClientSession {
            tree,
            resolver,
            config,
            cache: LdnsCache::new(),
            rng,
            addr_scratch: Vec::new(),
            conn_scratch: Vec::new(),
            trace_buf: Trace::new(),
            host_scratch: String::new(),
        }
    }

    /// Reclaim the per-transaction buffers of a consumed observation so the
    /// next transaction reuses them instead of allocating. Callers that keep
    /// the observation (or its connection list) simply skip this.
    pub fn recycle(&mut self, mut obs: TransactionObservation) {
        obs.connections.clear();
        if obs.connections.capacity() > self.conn_scratch.capacity() {
            self.conn_scratch = obs.connections;
        }
    }

    pub fn config(&self) -> &WgetConfig {
        &self.config
    }

    /// The client's LDNS cache (exposed for tests and cache studies).
    pub fn ldns_cache(&self) -> &LdnsCache {
        &self.cache
    }

    /// Run one direct (non-proxied) transaction for `host` starting at `t`.
    pub fn run_transaction<E: AccessEnvironment>(
        &mut self,
        env: &E,
        host: &DomainName,
        t: SimTime,
    ) -> TransactionObservation {
        // Span-trace roughly one transaction in a thousand: enough to see
        // where simulation wall time goes without holding millions of spans.
        static SAMPLER: telemetry::Sampler = telemetry::Sampler::new(1024);
        let span = SAMPLER
            .hit()
            .then(|| telemetry::span!("client.transaction").with_detail(|| host.to_string()));
        let obs = self.run_transaction_inner(env, host, t);
        if let Some(mut span) = span {
            let end = t
                + obs.dns.unwrap_or(SimDuration::ZERO)
                + obs.download_time.unwrap_or(SimDuration::ZERO);
            span.set_sim_range(t.as_micros(), end.as_micros());
        }
        record_transaction_outcome(&obs);
        obs
    }

    fn run_transaction_inner<E: AccessEnvironment>(
        &mut self,
        env: &E,
        host: &DomainName,
        t: SimTime,
    ) -> TransactionObservation {
        let mut addrs = std::mem::take(&mut self.addr_scratch);
        let obs = self.run_transaction_core(env, host, t, &mut addrs);
        addrs.clear();
        self.addr_scratch = addrs;
        obs
    }

    fn run_transaction_core<E: AccessEnvironment>(
        &mut self,
        env: &E,
        host: &DomainName,
        t: SimTime,
        addrs: &mut Vec<Ipv4Addr>,
    ) -> TransactionObservation {
        // Flight recorder: probe the ground-truth fault timelines as each
        // phase runs. Probes are pure lookups (no RNG), so they cannot
        // perturb the simulation; when neither recorder is on they are
        // skipped entirely and every stamp below stays `None`. The forensic
        // trace shares the probes, so it needs no sidecar of its own.
        let recording = self.config.record_provenance;
        let tracing = self.config.forensics;
        let need_truth = recording || tracing;
        let mut dns_truth = FaultSet::EMPTY;
        let mut connect_truth = FaultSet::EMPTY;
        let mut txn_trace = tracing.then(TxnTrace::default);
        if need_truth {
            dns_truth = env.true_dns_faults(host, t);
        }

        // Step 1: the client OS cache is flushed before each access; only
        // the LDNS cache (self.cache) persists.
        let resolution =
            self.resolver
                .resolve_into(host, env, t, &mut self.rng, &mut self.cache, addrs);
        let dns_elapsed = resolution.elapsed;
        if let Some(tr) = txn_trace.as_mut() {
            tr.events.push(TraceEvent::Dns {
                host: host.to_string(),
                at: t,
                elapsed: dns_elapsed,
                outcome: resolution.result,
                truth: dns_truth,
            });
        }
        if let Err(kind) = resolution.result {
            let dig = self.run_dig(env, host, t + dns_elapsed);
            let mut obs = TransactionObservation::dns_failure(t, kind, dig);
            obs.provenance = recording.then_some(ProvenanceRecord {
                dns: dns_truth,
                connect: FaultSet::EMPTY,
            });
            obs.trace = txn_trace;
            return obs;
        }

        let mut now = t + dns_elapsed;
        let mut connections: Vec<ConnObservation> = std::mem::take(&mut self.conn_scratch);
        let mut total_visible_retx: u32 = 0;
        let mut bytes_received: u64 = 0;
        let mut redirect_host: Option<DomainName> = None;
        let mut final_replica: Option<Ipv4Addr> = None;

        for _hop in 0..=self.config.max_redirects {
            // What will this host's origin say? (Determines the transfer
            // size the connection must carry.)
            self.host_scratch.clear();
            {
                use std::fmt::Write as _;
                write!(self.host_scratch, "{}", redirect_host.as_ref().unwrap_or(host))
                    .expect("formatting into a String cannot fail");
            }
            let host_str = &self.host_scratch;
            let request = HttpRequest::get(host_str, "/", self.config.no_cache);
            if self.config.http_wire_fidelity {
                let text = request.encode();
                let _ = HttpRequest::decode(&text).expect("own request re-parses");
            }
            let answer = match env.origin(host_str) {
                Some(origin) => origin.respond(host_str, &request, &mut self.rng),
                None => httpsim::OriginAnswer {
                    response: HttpResponse::error(404, "Not Found"),
                    next_host: None,
                },
            };
            if self.config.http_wire_fidelity {
                let text = answer.response.encode_head();
                let _ = HttpResponse::decode_head(&text).expect("own response re-parses");
            }
            let wire_bytes = answer.response.body_len + self.config.header_overhead;

            // Connect: wget fails over across the A records, then keeps
            // retrying while its time budget lasts. One full pass over the
            // address list is always attempted.
            let mut connected_result = None;
            let conn_phase_start = now;
            let captured = self.config.record_traces;
            'retry: loop {
                for addr in addrs.iter() {
                    if connections.len() as u16 >= self.config.max_connections {
                        break 'retry;
                    }
                    let behavior = env.server_behavior(*addr, now);
                    let mut attempt_truth = FaultSet::EMPTY;
                    if need_truth {
                        attempt_truth = env.true_faults(*addr, now);
                        connect_truth |= attempt_truth;
                    }
                    let path = env.path_quality(*addr, now);
                    let result = simulate_connection_into(
                        &self.config.tcp,
                        behavior,
                        &path,
                        wire_bytes,
                        now,
                        &mut self.rng,
                        captured.then_some(&mut self.trace_buf),
                    );
                    let trace = captured.then_some(&self.trace_buf);
                    let visible_retx = trace.map(|tr| count_retransmissions(tr).1);
                    if let Some(v) = visible_retx {
                        total_visible_retx += v;
                    }
                    // Classify the way the measurement does: from the trace
                    // when available, else coarsely from wget's own view.
                    let observed_outcome = match (trace, &result.outcome) {
                        (_, Ok(())) => Ok(()),
                        (Some(trace), Err(_)) => Err(classify_trace(trace)
                            .failure_kind()
                            .expect("failed connection has a failing trace")),
                        (None, Err(_)) => {
                            if result.established {
                                Err(TcpFailureKind::NoOrPartialResponse)
                            } else {
                                Err(TcpFailureKind::NoConnection)
                            }
                        }
                    };
                    connections.push(ConnObservation {
                        replica: *addr,
                        start: now,
                        outcome: observed_outcome,
                        syn_retransmissions: result.syn_retransmissions,
                        retransmissions: visible_retx,
                    });
                    if let Some(tr) = txn_trace.as_mut() {
                        tr.events.push(TraceEvent::Connect {
                            replica: *addr,
                            at: now,
                            elapsed: result.duration,
                            outcome: observed_outcome,
                            syn_retransmissions: result.syn_retransmissions,
                            truth: attempt_truth,
                        });
                    }
                    now += result.duration;
                    if result.outcome.is_ok() {
                        bytes_received += result.bytes_delivered.min(answer.response.body_len);
                        connected_result = Some(*addr);
                        break 'retry;
                    } else {
                        bytes_received += result
                            .bytes_delivered
                            .min(answer.response.body_len);
                    }
                }
                // First pass complete; continue only while the budget is
                // not yet exhausted.
                if now - conn_phase_start >= self.config.retry_time_budget {
                    break 'retry;
                }
            }

            let Some(addr) = connected_result else {
                // All connection attempts failed: a TCP transaction failure,
                // classified from the last attempt.
                let kind = connections
                    .last()
                    .and_then(|c| c.outcome.err())
                    .unwrap_or(TcpFailureKind::NoConnection);
                return TransactionObservation {
                    start: t,
                    dns: Ok(dns_elapsed),
                    outcome: TransactionOutcome::Failure(FailureClass::Tcp(kind)),
                    replica: connections.last().map(|c| c.replica),
                    download_time: Some(now - (t + dns_elapsed)),
                    bytes_received,
                    connections,
                    retransmissions: self.config.record_traces.then_some(total_visible_retx),
                    dig: DigOutcome::NotRun,
                    provenance: recording.then_some(ProvenanceRecord {
                        dns: dns_truth,
                        connect: connect_truth,
                    }),
                    trace: txn_trace,
                };
            };
            final_replica = Some(addr);
            if let Some(tr) = txn_trace.as_mut() {
                tr.events.push(TraceEvent::Http {
                    host: host_str.clone(),
                    at: now,
                    status: answer.response.status,
                    redirect: answer.next_host.clone(),
                    truth: FaultSet::EMPTY,
                });
            }

            match StatusClass::of(answer.response.status) {
                StatusClass::Success => {
                    return TransactionObservation {
                        start: t,
                        dns: Ok(dns_elapsed),
                        outcome: TransactionOutcome::Success,
                        replica: final_replica,
                        download_time: Some(now - (t + dns_elapsed)),
                        bytes_received,
                        connections,
                        retransmissions: self.config.record_traces.then_some(total_visible_retx),
                        dig: if self.config.dig_on_failure_only {
                            DigOutcome::NotRun
                        } else {
                            self.run_dig(env, host, now)
                        },
                        provenance: recording.then_some(ProvenanceRecord {
                            dns: dns_truth,
                            connect: connect_truth,
                        }),
                        trace: txn_trace,
                    };
                }
                StatusClass::Redirect => {
                    let next = answer.next_host.expect("redirect carries next host");
                    let next_name: DomainName = match next.parse() {
                        Ok(n) => n,
                        Err(_) => {
                            let prov = recording.then_some(ProvenanceRecord {
                                dns: dns_truth,
                                connect: connect_truth,
                            });
                            return self.http_failure(t, dns_elapsed, 502, final_replica, now, bytes_received, connections, total_visible_retx, prov, txn_trace)
                        }
                    };
                    let mut hop_truth = FaultSet::EMPTY;
                    if need_truth {
                        hop_truth = env.true_dns_faults(&next_name, now);
                        dns_truth |= hop_truth;
                    }
                    // Resolve the next hop (LDNS cache applies).
                    let r = self.resolver.resolve_into(
                        &next_name,
                        env,
                        now,
                        &mut self.rng,
                        &mut self.cache,
                        addrs,
                    );
                    if let Some(tr) = txn_trace.as_mut() {
                        tr.events.push(TraceEvent::Dns {
                            host: next.clone(),
                            at: now,
                            elapsed: r.elapsed,
                            outcome: r.result,
                            truth: hop_truth,
                        });
                    }
                    now += r.elapsed;
                    match r.result {
                        Ok(()) => {
                            redirect_host = Some(next_name);
                        }
                        Err(kind) => {
                            let dig = self.run_dig(env, &next_name, now);
                            let mut obs =
                                TransactionObservation::dns_failure(t, kind, dig);
                            // The initial lookup *succeeded*; the redirect's
                            // failed. Keep the failure class but preserve the
                            // observed connections.
                            obs.dns = Ok(dns_elapsed);
                            obs.outcome =
                                TransactionOutcome::Failure(FailureClass::Dns(kind));
                            obs.connections = connections;
                            obs.bytes_received = bytes_received;
                            obs.retransmissions =
                                self.config.record_traces.then_some(total_visible_retx);
                            obs.provenance = recording.then_some(ProvenanceRecord {
                                dns: dns_truth,
                                connect: connect_truth,
                            });
                            obs.trace = txn_trace;
                            return obs;
                        }
                    }
                }
                _ => {
                    let prov = recording.then_some(ProvenanceRecord {
                        dns: dns_truth,
                        connect: connect_truth,
                    });
                    return self.http_failure(
                        t,
                        dns_elapsed,
                        answer.response.status,
                        final_replica,
                        now,
                        bytes_received,
                        connections,
                        total_visible_retx,
                        prov,
                        txn_trace,
                    );
                }
            }
        }
        // Redirect limit exceeded: wget reports an error; classify as HTTP.
        let prov = recording.then_some(ProvenanceRecord {
            dns: dns_truth,
            connect: connect_truth,
        });
        self.http_failure(t, dns_elapsed, 310, final_replica, now, bytes_received, connections, total_visible_retx, prov, txn_trace)
    }

    /// Run one transaction through a corporate caching proxy.
    ///
    /// `env` is the *client's* view (covers the client↔proxy leg);
    /// `proxy_env` is the proxy's vantage toward the wide area.
    pub fn run_proxied_transaction<E, P>(
        &mut self,
        env: &E,
        proxy: &mut ProxySession,
        proxy_env: &P,
        host: &DomainName,
        t: SimTime,
    ) -> TransactionObservation
    where
        E: AccessEnvironment,
        P: AccessEnvironment,
    {
        let recording = self.config.record_provenance;
        let tracing = self.config.forensics;
        // The client must reach its proxy over the corporate LAN/WAN.
        if !env.client_link_up(t) {
            let truth = env.true_dns_faults(host, t);
            let obs = TransactionObservation {
                start: t,
                dns: Ok(SimDuration::ZERO),
                outcome: TransactionOutcome::Failure(FailureClass::Tcp(
                    TcpFailureKind::NoConnection,
                )),
                replica: None,
                download_time: None,
                bytes_received: 0,
                connections: Vec::new(),
                retransmissions: None,
                dig: DigOutcome::NotRun,
                provenance: recording.then_some(ProvenanceRecord {
                    dns: truth,
                    connect: FaultSet::EMPTY,
                }),
                // The dead corporate link shows up as one synthetic connect
                // attempt toward an unknowable replica.
                trace: tracing.then(|| TxnTrace {
                    events: vec![TraceEvent::Connect {
                        replica: Ipv4Addr::UNSPECIFIED,
                        at: t,
                        elapsed: SimDuration::ZERO,
                        outcome: Err(TcpFailureKind::NoConnection),
                        syn_retransmissions: 0,
                        truth,
                    }],
                }),
            };
            record_transaction_outcome(&obs);
            return obs;
        }
        let local_rtt = SimDuration::from_millis(5);
        // No retry here: the proxy answers the client with an HTTP gateway
        // error, which wget treats as a (failed) response — unlike its own
        // transport-level failures, which it does retry. This asymmetry is
        // part of the Table 9 proxy effect.
        let fetch = proxy.fetch(proxy_env, self.tree, host, t + local_rtt, self.config.no_cache);
        let (outcome, bytes, duration) = match fetch {
            ProxyFetch::Success { bytes, duration } => (
                TransactionOutcome::Success,
                bytes,
                duration + local_rtt * 2u64,
            ),
            ProxyFetch::HttpError(status, duration) => (
                TransactionOutcome::Failure(FailureClass::Http(status)),
                0,
                duration + local_rtt * 2u64,
            ),
            ProxyFetch::DnsFailed(_, duration) => (
                // The ISA proxy answers quickly with a gateway error; the
                // client cannot see that DNS was the cause.
                TransactionOutcome::Failure(FailureClass::Http(502)),
                0,
                duration + local_rtt * 2u64,
            ),
            ProxyFetch::ConnectFailed(duration) | ProxyFetch::TransferFailed(duration) => (
                TransactionOutcome::Failure(FailureClass::Http(504)),
                0,
                duration + local_rtt * 2u64,
            ),
        };
        // Vantage-level stamp only: the proxy hides which replica it tried,
        // so the connect phase cannot be attributed to a specific address —
        // clients behind one proxy share the proxy-vantage cause, which is
        // exactly the Section 4.7 shared-fate effect the audit measures.
        // Pure lookups, shared between the provenance stamp and the trace.
        let vantage = env.true_dns_faults(host, t)
            | proxy_env.true_dns_faults(host, t + local_rtt);
        let status = match &outcome {
            TransactionOutcome::Success => 200,
            TransactionOutcome::Failure(FailureClass::Http(s)) => *s,
            // Proxied failures always surface as HTTP statuses (above).
            TransactionOutcome::Failure(_) => 0,
        };
        let obs = TransactionObservation {
            start: t,
            dns: Ok(SimDuration::ZERO),
            outcome,
            replica: None,
            download_time: Some(duration),
            bytes_received: bytes,
            // The proxy masks upstream connections; the local connection is
            // not informative (Section 3.4) and is not recorded.
            connections: Vec::new(),
            retransmissions: None,
            dig: DigOutcome::NotRun,
            provenance: recording.then_some(ProvenanceRecord {
                dns: vantage,
                connect: FaultSet::EMPTY,
            }),
            // The proxy collapses the whole exchange into one HTTP event as
            // seen by the client; the vantage truth rides on it.
            trace: tracing.then(|| TxnTrace {
                events: vec![TraceEvent::Http {
                    host: host.to_string(),
                    at: t + local_rtt,
                    status,
                    redirect: None,
                    truth: vantage,
                }],
            }),
        };
        record_transaction_outcome(&obs);
        obs
    }

    #[allow(clippy::too_many_arguments)]
    fn http_failure(
        &mut self,
        t: SimTime,
        dns_elapsed: SimDuration,
        status: u16,
        replica: Option<Ipv4Addr>,
        now: SimTime,
        bytes_received: u64,
        connections: Vec<ConnObservation>,
        total_visible_retx: u32,
        provenance: Option<ProvenanceRecord>,
        trace: Option<TxnTrace>,
    ) -> TransactionObservation {
        TransactionObservation {
            start: t,
            dns: Ok(dns_elapsed),
            outcome: TransactionOutcome::Failure(FailureClass::Http(status)),
            replica,
            download_time: Some(now - (t + dns_elapsed)),
            bytes_received,
            connections,
            retransmissions: self.config.record_traces.then_some(total_visible_retx),
            dig: DigOutcome::NotRun,
            provenance,
            trace,
        }
    }

    fn run_dig<E: AccessEnvironment>(
        &mut self,
        env: &E,
        host: &DomainName,
        t: SimTime,
    ) -> DigOutcome {
        let (result, _) = dig_iterative(
            self.tree,
            host,
            env,
            t,
            &mut self.rng,
            &self.config.resolver,
        );
        match result {
            DigResult::Resolved(_) => DigOutcome::Resolved,
            DigResult::Failed(kind) => DigOutcome::Failed(kind),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::HealthyEnv;
    use dnssim::{DnsFaults, ZoneTree};
    use httpsim::Origin;
    use tcpsim::{PathQuality, ServerBehavior};

    fn name(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn tree() -> ZoneTree {
        ZoneTree::build_for_hosts(&[
            (name("www.example.com"), vec![Ipv4Addr::new(10, 0, 0, 1)]),
            (name("example.com"), vec![Ipv4Addr::new(10, 0, 0, 2)]),
            (
                name("www.multi.org"),
                vec![
                    Ipv4Addr::new(10, 1, 0, 1),
                    Ipv4Addr::new(10, 1, 0, 2),
                    Ipv4Addr::new(10, 1, 0, 3),
                ],
            ),
        ])
    }

    fn session<'a>(tree: &'a ZoneTree, seed: u64) -> ClientSession<'a> {
        let mut cfg = WgetConfig::default();
        cfg.resolver.query_loss_prob = 0.0;
        ClientSession::new(tree, cfg, SimRng::new(seed))
    }

    #[test]
    fn healthy_transaction_succeeds() {
        let tr = tree();
        let env = HealthyEnv::new(Origin::simple("www.example.com", 24_000));
        let mut s = session(&tr, 1);
        let obs = s.run_transaction(&env, &name("www.example.com"), SimTime::from_hours(1));
        assert!(obs.outcome.is_success());
        assert_eq!(obs.bytes_received, 24_000);
        assert_eq!(obs.connections.len(), 1);
        assert_eq!(obs.replica, Some(Ipv4Addr::new(10, 0, 0, 1)));
        assert!(obs.dns.is_ok());
        assert_eq!(obs.dig, DigOutcome::NotRun);
        assert!(obs.download_time.unwrap() > SimDuration::ZERO);
    }

    #[test]
    fn redirect_adds_a_connection() {
        let tr = tree();
        let env = HealthyEnv::new(
            Origin::simple("www.example.com", 10_000)
                .with_redirects(vec!["example.com".to_string()]),
        );
        let mut s = session(&tr, 2);
        let obs = s.run_transaction(&env, &name("example.com"), SimTime::from_hours(1));
        assert!(obs.outcome.is_success());
        assert_eq!(obs.connections.len(), 2, "redirect hop + content hop");
        assert_eq!(obs.replica, Some(Ipv4Addr::new(10, 0, 0, 1)));
        assert_eq!(obs.bytes_received, 10_000);
    }

    /// Environment in which every server is unreachable.
    struct ServersDown(HealthyEnv);
    impl DnsFaults for ServersDown {}
    impl AccessEnvironment for ServersDown {
        fn server_behavior(&self, _r: Ipv4Addr, _t: SimTime) -> ServerBehavior {
            ServerBehavior::Unreachable
        }
        fn path_quality(&self, r: Ipv4Addr, t: SimTime) -> PathQuality {
            self.0.path_quality(r, t)
        }
        fn origin(&self, host: &str) -> Option<&Origin> {
            self.0.origin(host)
        }
    }

    #[test]
    fn server_down_yields_no_connection_with_failover_attempts() {
        let tr = tree();
        let env = ServersDown(HealthyEnv::new(Origin::simple("www.multi.org", 5_000)));
        let mut s = session(&tr, 3);
        let obs = s.run_transaction(&env, &name("www.multi.org"), SimTime::from_hours(1));
        assert_eq!(
            obs.outcome.failure().unwrap(),
            FailureClass::Tcp(TcpFailureKind::NoConnection)
        );
        // One full pass over the 3 replicas (45 s SYN timeouts each)
        // exhausts the 90-second retry budget.
        assert_eq!(obs.connections.len(), 3);
        assert!(obs.connections.iter().all(|c| c.outcome.is_err()));
    }

    /// One replica up, the rest unreachable: wget's fail-over succeeds.
    struct OneGoodReplica(HealthyEnv, Ipv4Addr);
    impl DnsFaults for OneGoodReplica {}
    impl AccessEnvironment for OneGoodReplica {
        fn server_behavior(&self, r: Ipv4Addr, _t: SimTime) -> ServerBehavior {
            if r == self.1 {
                ServerBehavior::Healthy
            } else {
                ServerBehavior::Unreachable
            }
        }
        fn path_quality(&self, r: Ipv4Addr, t: SimTime) -> PathQuality {
            self.0.path_quality(r, t)
        }
        fn origin(&self, host: &str) -> Option<&Origin> {
            self.0.origin(host)
        }
    }

    #[test]
    fn failover_across_a_records() {
        let tr = tree();
        let good = Ipv4Addr::new(10, 1, 0, 3);
        let env = OneGoodReplica(HealthyEnv::new(Origin::simple("www.multi.org", 5_000)), good);
        let mut s = session(&tr, 4);
        // DNS round-robin rotates the order, so the number of dead
        // replicas tried first varies — but wget always lands on the live
        // one eventually.
        for k in 0..10u64 {
            let t = SimTime::from_hours(1) + SimDuration::from_secs(k * 120);
            let obs = s.run_transaction(&env, &name("www.multi.org"), t);
            assert!(obs.outcome.is_success(), "wget fails over to the live replica");
            assert_eq!(obs.replica, Some(good));
            assert!((1..=3).contains(&obs.connections.len()));
            assert!(obs.connections.last().unwrap().outcome.is_ok());
        }
    }

    /// DNS totally broken at the client.
    struct NoDns(HealthyEnv);
    impl DnsFaults for NoDns {
        fn client_link_up(&self, _t: SimTime) -> bool {
            false
        }
    }
    impl AccessEnvironment for NoDns {
        fn server_behavior(&self, r: Ipv4Addr, t: SimTime) -> ServerBehavior {
            self.0.server_behavior(r, t)
        }
        fn path_quality(&self, r: Ipv4Addr, t: SimTime) -> PathQuality {
            self.0.path_quality(r, t)
        }
        fn origin(&self, host: &str) -> Option<&Origin> {
            self.0.origin(host)
        }
    }

    #[test]
    fn dns_failure_short_circuits_and_digs() {
        let tr = tree();
        let env = NoDns(HealthyEnv::new(Origin::simple("www.example.com", 1_000)));
        let mut s = session(&tr, 5);
        let obs = s.run_transaction(&env, &name("www.example.com"), SimTime::from_hours(1));
        assert_eq!(
            obs.outcome.failure().unwrap(),
            FailureClass::Dns(DnsFailureKind::LdnsTimeout)
        );
        assert!(obs.connections.is_empty());
        // Link down: dig agrees (the >94% agreement case).
        assert_eq!(obs.dig, DigOutcome::Failed(DnsFailureKind::LdnsTimeout));
    }

    #[test]
    fn http_error_is_http_failure() {
        let tr = tree();
        let env = HealthyEnv::new(Origin::simple("www.example.com", 1_000).with_error_rate(1.0, 503));
        let mut s = session(&tr, 6);
        let obs = s.run_transaction(&env, &name("www.example.com"), SimTime::from_hours(1));
        assert_eq!(obs.outcome.failure().unwrap(), FailureClass::Http(503));
        assert_eq!(obs.connections.len(), 1, "transfer worked; content didn't");
        assert!(obs.connections[0].outcome.is_ok());
    }

    #[test]
    fn unknown_origin_is_http_404() {
        let tr = tree();
        // Environment knows www.example.com only; we ask for example.com
        // (resolvable in DNS but no origin behind it).
        let env = HealthyEnv::new(Origin::simple("www.example.com", 1_000));
        let mut s = session(&tr, 7);
        let obs = s.run_transaction(&env, &name("example.com"), SimTime::from_hours(1));
        assert_eq!(obs.outcome.failure().unwrap(), FailureClass::Http(404));
    }

    #[test]
    fn traces_off_merges_post_handshake_failures() {
        struct NoResp(HealthyEnv);
        impl DnsFaults for NoResp {}
        impl AccessEnvironment for NoResp {
            fn server_behavior(&self, _r: Ipv4Addr, _t: SimTime) -> ServerBehavior {
                ServerBehavior::AcceptNoResponse
            }
            fn path_quality(&self, r: Ipv4Addr, t: SimTime) -> PathQuality {
                self.0.path_quality(r, t)
            }
            fn origin(&self, host: &str) -> Option<&Origin> {
                self.0.origin(host)
            }
        }
        let tr = tree();
        let env = NoResp(HealthyEnv::new(Origin::simple("www.example.com", 1_000)));
        let mut cfg = WgetConfig::default();
        cfg.record_traces = false; // a BB client
        let mut s = ClientSession::new(&tr, cfg, SimRng::new(8));
        let obs = s.run_transaction(&env, &name("www.example.com"), SimTime::from_hours(1));
        assert_eq!(
            obs.outcome.failure().unwrap(),
            FailureClass::Tcp(TcpFailureKind::NoOrPartialResponse)
        );
        assert_eq!(obs.retransmissions, None, "no trace, no loss count");
    }

    #[test]
    fn deterministic_with_same_seed() {
        let tr = tree();
        let env = HealthyEnv::new(Origin::simple("www.example.com", 24_000));
        let mut a = session(&tr, 42);
        let mut b = session(&tr, 42);
        let oa = a.run_transaction(&env, &name("www.example.com"), SimTime::from_hours(3));
        let ob = b.run_transaction(&env, &name("www.example.com"), SimTime::from_hours(3));
        assert_eq!(oa.download_time, ob.download_time);
        assert_eq!(oa.bytes_received, ob.bytes_received);
    }

    #[test]
    fn proxied_transaction_success_and_masking() {
        let tr = tree();
        let env = HealthyEnv::new(Origin::simple("www.example.com", 9_000));
        let mut s = session(&tr, 21);
        let mut proxy = crate::proxy::ProxySession::new(Default::default(), SimRng::new(22));
        let obs = s.run_proxied_transaction(
            &env,
            &mut proxy,
            &env,
            &name("www.example.com"),
            SimTime::from_hours(1),
        );
        assert!(obs.outcome.is_success());
        assert_eq!(obs.bytes_received, 9_000);
        // Masking: no DNS timing, no connection records, no traces, no dig.
        assert_eq!(obs.dns, Ok(SimDuration::ZERO));
        assert!(obs.connections.is_empty());
        assert_eq!(obs.retransmissions, None);
        assert_eq!(obs.dig, DigOutcome::NotRun);
    }

    #[test]
    fn proxied_transaction_maps_upstream_failure_to_gateway_error() {
        let tr = tree();
        let env = ServersDown(HealthyEnv::new(Origin::simple("www.example.com", 9_000)));
        let mut s = session(&tr, 23);
        let mut proxy = crate::proxy::ProxySession::new(Default::default(), SimRng::new(24));
        let obs = s.run_proxied_transaction(
            &env,
            &mut proxy,
            &env,
            &name("www.example.com"),
            SimTime::from_hours(1),
        );
        assert_eq!(obs.outcome.failure().unwrap(), FailureClass::Http(504));
    }

    #[test]
    fn proxied_transaction_fails_locally_when_client_link_down() {
        let tr = tree();
        let client_env = NoDns(HealthyEnv::new(Origin::simple("www.example.com", 9_000)));
        let proxy_env = HealthyEnv::new(Origin::simple("www.example.com", 9_000));
        let mut s = session(&tr, 25);
        let mut proxy = crate::proxy::ProxySession::new(Default::default(), SimRng::new(26));
        let obs = s.run_proxied_transaction(
            &client_env,
            &mut proxy,
            &proxy_env,
            &name("www.example.com"),
            SimTime::from_hours(1),
        );
        assert_eq!(
            obs.outcome.failure().unwrap(),
            FailureClass::Tcp(TcpFailureKind::NoConnection),
            "cannot even reach the proxy"
        );
    }

    #[test]
    fn proxied_upstream_dns_failure_is_a_masked_gateway_error() {
        let tr = tree();
        let client_env = HealthyEnv::new(Origin::simple("www.example.com", 9_000));
        // The proxy's vantage has no working DNS.
        let proxy_env = NoDns(HealthyEnv::new(Origin::simple("www.example.com", 9_000)));
        let mut s = session(&tr, 27);
        let mut proxy = crate::proxy::ProxySession::new(Default::default(), SimRng::new(28));
        let obs = s.run_proxied_transaction(
            &client_env,
            &mut proxy,
            &proxy_env,
            &name("www.example.com"),
            SimTime::from_hours(1),
        );
        assert_eq!(
            obs.outcome.failure().unwrap(),
            FailureClass::Http(502),
            "the client cannot tell it was DNS"
        );
    }

    fn forensic_session<'a>(tree: &'a ZoneTree, seed: u64) -> ClientSession<'a> {
        let mut cfg = WgetConfig::default();
        cfg.resolver.query_loss_prob = 0.0;
        cfg.forensics = true;
        ClientSession::new(tree, cfg, SimRng::new(seed))
    }

    #[test]
    fn forensics_captures_causal_timeline() {
        let tr = tree();
        let env = HealthyEnv::new(Origin::simple("www.example.com", 24_000));
        let mut s = forensic_session(&tr, 31);
        let obs = s.run_transaction(&env, &name("www.example.com"), SimTime::from_hours(1));
        assert!(obs.outcome.is_success());
        let trace = obs.trace.expect("forensics on records a trace");
        let phases: Vec<&str> = trace.events.iter().map(|e| e.phase()).collect();
        assert_eq!(phases, ["dns", "connect", "http"]);
        assert!(trace.events.iter().all(|e| !e.failed()));
        assert!(
            trace.events.windows(2).all(|w| w[0].at() <= w[1].at()),
            "events are causally ordered"
        );
        assert_eq!(trace.truth(), FaultSet::EMPTY, "healthy world carries no faults");
    }

    #[test]
    fn forensics_traces_redirect_hops() {
        let tr = tree();
        let env = HealthyEnv::new(
            Origin::simple("www.example.com", 10_000)
                .with_redirects(vec!["example.com".to_string()]),
        );
        let mut s = forensic_session(&tr, 32);
        let obs = s.run_transaction(&env, &name("example.com"), SimTime::from_hours(1));
        assert!(obs.outcome.is_success());
        let trace = obs.trace.expect("trace recorded");
        let phases: Vec<&str> = trace.events.iter().map(|e| e.phase()).collect();
        assert_eq!(
            phases,
            ["dns", "connect", "http", "dns", "connect", "http"],
            "each redirect hop re-resolves and reconnects"
        );
        let redirects: Vec<bool> = trace
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Http { redirect, .. } => Some(redirect.is_some()),
                _ => None,
            })
            .collect();
        assert_eq!(redirects, [true, false], "first hop redirects, second lands");
    }

    #[test]
    fn forensics_records_failed_dns_attempt() {
        let tr = tree();
        let env = NoDns(HealthyEnv::new(Origin::simple("www.example.com", 1_000)));
        let mut s = forensic_session(&tr, 33);
        let obs = s.run_transaction(&env, &name("www.example.com"), SimTime::from_hours(1));
        assert!(obs.outcome.is_failure());
        let trace = obs.trace.expect("trace recorded");
        assert_eq!(trace.events.len(), 1, "DNS dies before any connect");
        assert_eq!(trace.events[0].phase(), "dns");
        assert!(trace.events[0].failed());
    }

    #[test]
    fn forensics_does_not_perturb_transactions() {
        let tr = tree();
        let env = HealthyEnv::new(Origin::simple("www.example.com", 24_000));
        let mut plain = session(&tr, 34);
        let mut traced = forensic_session(&tr, 34);
        for k in 0..6u64 {
            let t = SimTime::from_hours(1) + SimDuration::from_secs(k * 600);
            let a = plain.run_transaction(&env, &name("www.example.com"), t);
            let b = traced.run_transaction(&env, &name("www.example.com"), t);
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.dns, b.dns);
            assert_eq!(a.download_time, b.download_time);
            assert_eq!(a.bytes_received, b.bytes_received);
            assert_eq!(a.connections, b.connections);
            assert!(a.trace.is_none(), "forensics off records nothing");
            assert!(b.trace.is_some());
        }
    }

    #[test]
    fn forensics_collapses_proxied_exchange_to_one_event() {
        let tr = tree();
        let env = HealthyEnv::new(Origin::simple("www.example.com", 9_000));
        let mut s = forensic_session(&tr, 35);
        let mut proxy = crate::proxy::ProxySession::new(Default::default(), SimRng::new(36));
        let obs = s.run_proxied_transaction(
            &env,
            &mut proxy,
            &env,
            &name("www.example.com"),
            SimTime::from_hours(1),
        );
        assert!(obs.outcome.is_success());
        let trace = obs.trace.expect("trace recorded");
        assert_eq!(trace.events.len(), 1, "the proxy masks the phases");
        assert_eq!(trace.events[0].phase(), "http");
        assert!(!trace.events[0].failed());
    }

    #[test]
    fn second_access_uses_ldns_cache() {
        let tr = tree();
        let env = HealthyEnv::new(Origin::simple("www.example.com", 1_000));
        let mut s = session(&tr, 9);
        let t0 = SimTime::from_hours(1);
        let first = s.run_transaction(&env, &name("www.example.com"), t0);
        let second = s.run_transaction(
            &env,
            &name("www.example.com"),
            t0 + SimDuration::from_secs(120),
        );
        assert!(first.dns.unwrap() > second.dns.unwrap(), "cache hit is faster");
        assert_eq!(s.ldns_cache().len(), 1);
    }
}
