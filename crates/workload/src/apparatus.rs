//! The apparatus fault model: failures of the measurement infrastructure
//! itself.
//!
//! The ground-truth model in [`crate::faults`] describes the *network* —
//! the thing the paper measures. This module describes the *apparatus* —
//! the thing the paper measures **with**: client nodes crash mid-month,
//! performance records are lost on their way to the collection server, and
//! trace files arrive truncated or bit-flipped. The paper's own deployment
//! suffered all three (PlanetLab nodes rebooted, dialup scripts wedged,
//! tcpdump files were cut short); a reproduction that only ever sees
//! pristine data silently overstates the pipeline's robustness.
//!
//! Keeping the two models separate matters for validation: network faults
//! are part of the world being inferred and must flow into the analysis,
//! while apparatus faults are measurement error the analysis has to
//! *survive* — they must be reported (see `experiment::RunReport`), never
//! inferred as network behaviour.
//!
//! Every draw forks the experiment's root RNG by client index or a fixed
//! label, so injected faults are bit-for-bit reproducible and independent
//! of thread count, exactly like the rest of the simulation.

use model::SimTime;
use netsim::SimRng;

/// RNG stream ids (offsets on the root seed) reserved for apparatus draws.
/// Kept disjoint from the `0x90_0000 + client` streams the clients
/// themselves use, so enabling apparatus faults never perturbs the
/// simulated world.
const STREAM_DEATH: u64 = 0xA1_0000;
const STREAM_DROPS: u64 = 0xA2_0000;

/// Intensities of the injected infrastructure faults. The default
/// ([`ApparatusFaults::none`]) injects nothing and leaves the runner
/// bit-for-bit identical to a build without this module.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ApparatusFaults {
    /// Per-client probability that the node dies mid-month: its worker
    /// thread panics at the drawn instant and every record it gathered is
    /// lost (a crash loses the node-local spool, as it did on PlanetLab).
    pub client_death_prob: f64,
    /// Per-record probability that a [`model::PerformanceRecord`] is lost
    /// between the client and the collection server.
    pub record_drop_prob: f64,
    /// Round-trip the BGP collector feed through MRT bytes and corrupt the
    /// buffer before salvage-decoding it (exercises
    /// [`bgpsim::mrt::decode_stream_salvage`] inside the real pipeline).
    pub corrupt_bgp_feed: bool,
    /// Bit flips applied to a corrupted byte buffer.
    pub bitflips: u32,
    /// Probability that a corrupted buffer is also truncated at a uniform
    /// point of its tail third.
    pub truncate_prob: f64,
}

impl ApparatusFaults {
    /// No apparatus faults: the healthy-run configuration.
    pub fn none() -> ApparatusFaults {
        ApparatusFaults::default()
    }

    /// The stress preset used by the degraded-run acceptance tests: a few
    /// dead nodes per fleet, 1% record loss, and a corrupted BGP feed.
    pub fn stress() -> ApparatusFaults {
        ApparatusFaults {
            client_death_prob: 0.04,
            record_drop_prob: 0.01,
            corrupt_bgp_feed: true,
            bitflips: 24,
            truncate_prob: 1.0,
        }
    }

    /// Does this configuration inject anything at all?
    pub fn is_none(&self) -> bool {
        *self == ApparatusFaults::none()
    }

    /// The instant at which `client`'s node dies, if it does. Drawn from a
    /// dedicated fork of the root stream, uniform over the middle of the
    /// run (25–90% of the horizon) — a node that dies in the first minutes
    /// would be indistinguishable from one that never joined.
    pub fn death_time(&self, root: &SimRng, client: usize, hours: u32) -> Option<SimTime> {
        if self.client_death_prob <= 0.0 || hours == 0 {
            return None;
        }
        let mut rng = root.fork(STREAM_DEATH + client as u64);
        if rng.f64() >= self.client_death_prob {
            return None;
        }
        let horizon = u64::from(hours) * 3_600_000_000;
        let lo = horizon / 4;
        let hi = horizon * 9 / 10;
        Some(SimTime::from_micros(lo + rng.below(hi - lo)))
    }

    /// The collection-loss stream for `client` (used by the runner to
    /// decide which of its records survive).
    pub fn drop_stream(&self, root: &SimRng, client: usize) -> SimRng {
        root.fork(STREAM_DROPS + client as u64)
    }

    /// Corrupt `buf` in place per this configuration: [`Self::bitflips`]
    /// random bit flips, then truncation of the tail third with probability
    /// [`Self::truncate_prob`]. Returns what was done.
    pub fn corrupt_buffer(&self, rng: &mut SimRng, buf: &mut Vec<u8>) -> CorruptionApplied {
        let flipped = bitflip(buf, rng, self.bitflips);
        let truncated_at = if rng.f64() < self.truncate_prob {
            truncate_tail(buf, rng)
        } else {
            None
        };
        CorruptionApplied {
            bitflips: flipped,
            truncated_at,
        }
    }
}

/// What [`ApparatusFaults::corrupt_buffer`] actually did to a buffer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CorruptionApplied {
    pub bitflips: u32,
    pub truncated_at: Option<usize>,
}

impl CorruptionApplied {
    pub fn is_clean(&self) -> bool {
        self.bitflips == 0 && self.truncated_at.is_none()
    }
}

/// Flip `n` random bits of `buf`; returns how many were flipped (0 for an
/// empty buffer).
pub fn bitflip(buf: &mut [u8], rng: &mut SimRng, n: u32) -> u32 {
    if buf.is_empty() {
        return 0;
    }
    for _ in 0..n {
        let byte = rng.below(buf.len() as u64) as usize;
        let bit = rng.below(8) as u8;
        buf[byte] ^= 1 << bit;
    }
    n
}

/// Truncate `buf` at a uniform point of its final third (a partial write:
/// the interesting case, where most of the file is still salvageable).
/// Returns the cut offset, or `None` for buffers too small to cut.
pub fn truncate_tail(buf: &mut Vec<u8>, rng: &mut SimRng) -> Option<usize> {
    if buf.len() < 3 {
        return None;
    }
    let lo = buf.len() * 2 / 3;
    let cut = lo + rng.below((buf.len() - lo) as u64) as usize;
    buf.truncate(cut);
    Some(cut)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_injects_nothing() {
        let a = ApparatusFaults::none();
        assert!(a.is_none());
        let root = SimRng::new(7);
        for c in 0..200 {
            assert_eq!(a.death_time(&root, c, 744), None);
        }
        let mut buf = vec![0u8; 64];
        let before = buf.clone();
        let mut rng = SimRng::new(1);
        let applied = a.corrupt_buffer(&mut rng, &mut buf);
        assert!(applied.is_clean());
        assert_eq!(buf, before);
    }

    #[test]
    fn death_times_are_deterministic_and_mid_run() {
        let a = ApparatusFaults {
            client_death_prob: 0.5,
            ..ApparatusFaults::none()
        };
        let root = SimRng::new(99);
        let hours = 100u32;
        let horizon = u64::from(hours) * 3_600_000_000;
        let mut died = 0;
        for c in 0..200 {
            let t1 = a.death_time(&root, c, hours);
            let t2 = a.death_time(&root, c, hours);
            assert_eq!(t1, t2, "death draw must be reproducible");
            if let Some(t) = t1 {
                died += 1;
                assert!(t.as_micros() >= horizon / 4);
                assert!(t.as_micros() < horizon * 9 / 10);
            }
        }
        assert!((60..140).contains(&died), "{died} of 200 died at p=0.5");
    }

    #[test]
    fn death_draws_are_independent_per_client() {
        let a = ApparatusFaults {
            client_death_prob: 0.5,
            ..ApparatusFaults::none()
        };
        let root = SimRng::new(4);
        let t5 = a.death_time(&root, 5, 50);
        // Another client's fate never shifts client 5's draw.
        let _ = a.death_time(&root, 6, 50);
        assert_eq!(a.death_time(&root, 5, 50), t5);
    }

    #[test]
    fn corruption_changes_bytes_and_truncates() {
        let a = ApparatusFaults::stress();
        let mut rng = SimRng::new(11);
        let mut buf: Vec<u8> = (0..255u8).cycle().take(3000).collect();
        let original = buf.clone();
        let applied = a.corrupt_buffer(&mut rng, &mut buf);
        assert_eq!(applied.bitflips, 24);
        let cut = applied.truncated_at.expect("stress always truncates");
        assert!(cut >= 2000 && cut < 3000);
        assert_eq!(buf.len(), cut);
        assert_ne!(&buf[..], &original[..cut], "bit flips landed");
    }

    #[test]
    fn bitflip_on_empty_buffer_is_a_noop() {
        let mut rng = SimRng::new(1);
        let mut empty: Vec<u8> = Vec::new();
        assert_eq!(bitflip(&mut empty, &mut rng, 10), 0);
        assert_eq!(truncate_tail(&mut empty, &mut rng), None);
    }
}
