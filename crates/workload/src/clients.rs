//! The measurement fleet (Table 1).

use model::{ClientCategory, ProxyId};
use std::net::Ipv4Addr;

/// Fault-intensity archetype of a client (numbers live in `faults.rs`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ClientProfile {
    /// Ordinary PlanetLab node: noticeable last-mile/LDNS trouble.
    PlTypical,
    /// Node at the Intel-like site: the site link fails constantly and both
    /// nodes share almost every client-side episode (Table 8: 98.2%).
    PlIntelShared,
    /// A Columbia-like node with heavy *node-specific* faults.
    PlColumbiaNoisy,
    /// The third Columbia-like node: nearly quiet (similarity 3–5%).
    PlColumbiaQuiet,
    /// KAIST-like: a handful of episodes, about half shared.
    PlKaist,
    /// The howard.edu-like client of Figure 5: wide-area outages coupled to
    /// severe (≥70-neighbor) BGP withdrawals of its prefix.
    PlBgpShowcase,
    /// The kscy-like client of Figure 7: a wide-area outage visible at only
    /// 2 Routeviews peers yet devastating to reachability.
    PlKscyShowcase,
    /// Commercial dialup PoP path: few failures.
    Dialup,
    /// Corporate client behind a caching proxy.
    CorpProxied,
    /// SEAEXT: outside the proxy/firewall, same WAN as SEA1/SEA2.
    CorpExternal,
    /// Residential DSL/cable.
    Broadband,
}

/// Static description of one client.
#[derive(Clone, Debug)]
pub struct ClientSpec {
    pub name: String,
    pub category: ClientCategory,
    /// Analysis-visible co-location group (the Section 4.4.6 pairs).
    pub colocation: Option<u16>,
    /// Fault-sharing group for WAN/site-level outages (includes the CN
    /// Seattle trio, which the paper does *not* count among the 35 pairs).
    pub wan_group: Option<u16>,
    pub proxy: Option<ProxyId>,
    pub profile: ClientProfile,
    pub addr: Ipv4Addr,
    /// Covered by a second, less-specific announced prefix (the paper: 50
    /// of 203 addresses map to 2 prefixes).
    pub extra_prefix: bool,
}

/// The whole fleet plus proxy count.
#[derive(Clone, Debug)]
pub struct FleetSpec {
    pub clients: Vec<ClientSpec>,
    pub proxy_count: u16,
    /// Number of distinct fault-sharing groups allocated.
    pub group_count: u16,
}

impl FleetSpec {
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }
}

/// Deterministic client address assignment: group `g`, member `i` lives at
/// `10.(g/200).(g%200).(10+i)`; each group is a /24.
fn group_addr(group: u16, member: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, (group / 200) as u8, (group % 200) as u8, 10 + member)
}

/// Build the paper's fleet: 95 PL + 26 DU + 6 CN + 7 BB = 134 clients.
///
/// PlanetLab spreads 95 nodes over 64 sites as 27 two-node sites, 2
/// three-node sites and 35 singles, giving 33 co-located PL pairs; with the
/// 2 BB pairs that makes the 35 pairs of Table 7.
pub fn build_fleet() -> FleetSpec {
    let mut clients: Vec<ClientSpec> = Vec::with_capacity(134);
    let mut group: u16 = 0;

    let push = |name: String,
                    category: ClientCategory,
                    colocation: Option<u16>,
                    wan_group: Option<u16>,
                    proxy: Option<ProxyId>,
                    profile: ClientProfile,
                    addr: Ipv4Addr,
                    clients: &mut Vec<ClientSpec>| {
        // Every 4th client address is additionally covered by a /16.
        let extra_prefix = clients.len().is_multiple_of(4);
        clients.push(ClientSpec {
            name,
            category,
            colocation,
            wan_group,
            proxy,
            profile,
            addr,
            extra_prefix,
        });
    };

    // --- PlanetLab: 64 sites -------------------------------------------
    // Site 0: Intel-like (2 nodes). Site 1: Columbia-like (3 nodes).
    // Site 2: KAIST-like (3 nodes). Sites 3..=28: two-node sites (26 of
    // them). Sites 29..=63: single-node sites (35), among them the BGP
    // showcase clients.
    {
        let g = group;
        group += 1;
        for (i, name) in ["planet1.pittsburgh.intel-research.net", "planet2.pittsburgh.intel-research.net"]
            .iter()
            .enumerate()
        {
            push(
                name.to_string(),
                ClientCategory::PlanetLab,
                Some(g),
                Some(g),
                None,
                ClientProfile::PlIntelShared,
                group_addr(g, i as u8),
                &mut clients,
            );
        }
    }
    {
        let g = group;
        group += 1;
        let profiles = [
            ("planetlab2.comet.columbia.edu", ClientProfile::PlColumbiaNoisy),
            ("planetlab3.comet.columbia.edu", ClientProfile::PlColumbiaNoisy),
            ("planetlab1.comet.columbia.edu", ClientProfile::PlColumbiaQuiet),
        ];
        for (i, (name, profile)) in profiles.iter().enumerate() {
            push(
                name.to_string(),
                ClientCategory::PlanetLab,
                Some(g),
                Some(g),
                None,
                *profile,
                group_addr(g, i as u8),
                &mut clients,
            );
        }
    }
    {
        let g = group;
        group += 1;
        for (i, name) in ["csplanetlab1.kaist.ac.kr", "csplanetlab3.kaist.ac.kr", "csplanetlab4.kaist.ac.kr"]
            .iter()
            .enumerate()
        {
            push(
                name.to_string(),
                ClientCategory::PlanetLab,
                Some(g),
                Some(g),
                None,
                ClientProfile::PlKaist,
                group_addr(g, i as u8),
                &mut clients,
            );
        }
    }
    for site in 0..26 {
        let g = group;
        group += 1;
        for i in 0..2u8 {
            push(
                format!("planetlab{}.site{:02}.pl.example.edu", i + 1, site),
                ClientCategory::PlanetLab,
                Some(g),
                Some(g),
                None,
                ClientProfile::PlTypical,
                group_addr(g, i),
                &mut clients,
            );
        }
    }
    // 35 single-node sites; two of them are the BGP showcases.
    for site in 0..35 {
        let g = group;
        group += 1;
        let (name, profile) = match site {
            0 => (
                "nodea.howard.edu".to_string(),
                ClientProfile::PlBgpShowcase,
            ),
            1 => (
                "planetlab1.kscy.internet2.planet-lab.org".to_string(),
                ClientProfile::PlKscyShowcase,
            ),
            _ => (
                format!("planetlab1.solo{:02}.pl.example.org", site),
                ClientProfile::PlTypical,
            ),
        };
        push(
            name,
            ClientCategory::PlanetLab,
            None, // single node: not a co-location pair
            Some(g),
            None,
            profile,
            group_addr(g, 0),
            &mut clients,
        );
    }

    // --- Dialup: 26 PoPs ---------------------------------------------------
    let du_pops: [(&str, &str); 26] = [
        ("boston", "icg"), ("boston", "level3"), ("boston", "qwest"),
        ("chicago", "icg"), ("chicago", "level3"), ("chicago", "qwest"),
        ("houston", "icg"), ("houston", "level3"), ("houston", "qwest"),
        ("newyork", "icg"), ("newyork", "qwest"), ("newyork", "uunet"),
        ("pittsburgh", "icg"), ("pittsburgh", "level3"), ("pittsburgh", "qwest"),
        ("sandiego", "icg"), ("sandiego", "level3"), ("sandiego", "qwest"),
        ("sanfrancisco", "icg"), ("sanfrancisco", "level3"), ("sanfrancisco", "qwest"),
        ("seattle", "icg"), ("seattle", "level3"), ("seattle", "qwest"),
        ("washingtondc", "icg"), ("washingtondc", "level3"),
    ];
    for (city, provider) in du_pops {
        let g = group;
        group += 1;
        push(
            format!("du-{city}-{provider}.msn.example"),
            ClientCategory::Dialup,
            None,
            Some(g),
            None,
            ClientProfile::Dialup,
            group_addr(g, 0),
            &mut clients,
        );
    }

    // --- CorpNet: 5 proxied + SEAEXT ---------------------------------------
    let sea_group = group;
    group += 1;
    for (i, (name, proxy)) in [("sea1.corp.example", 0u16), ("sea2.corp.example", 1)]
        .iter()
        .enumerate()
    {
        push(
            name.to_string(),
            ClientCategory::CorpNet,
            None, // the paper's 35 pairs exclude CN
            Some(sea_group),
            Some(ProxyId(*proxy)),
            ClientProfile::CorpProxied,
            group_addr(sea_group, i as u8),
            &mut clients,
        );
    }
    for (name, proxy) in [
        ("sf.corp.example", 2u16),
        ("uk.corp.example", 3),
        ("chn.corp.example", 4),
    ] {
        let g = group;
        group += 1;
        push(
            name.to_string(),
            ClientCategory::CorpNet,
            None,
            Some(g),
            Some(ProxyId(proxy)),
            ClientProfile::CorpProxied,
            group_addr(g, 0),
            &mut clients,
        );
    }
    push(
        "seaext.corp.example".to_string(),
        ClientCategory::CorpNet,
        None,
        Some(sea_group),
        None,
        ClientProfile::CorpExternal,
        group_addr(sea_group, 2),
        &mut clients,
    );

    // --- Broadband: 7 clients, 2 co-located pairs ---------------------------
    {
        let g = group;
        group += 1;
        for i in 0..2u8 {
            push(
                format!("bb-sandiego-roadrunner-{}", i + 1),
                ClientCategory::Broadband,
                Some(g),
                Some(g),
                None,
                ClientProfile::Broadband,
                group_addr(g, i),
                &mut clients,
            );
        }
    }
    {
        let g = group;
        group += 1;
        for i in 0..2u8 {
            push(
                format!("bb-seattle-verizon-{}", i + 1),
                ClientCategory::Broadband,
                Some(g),
                Some(g),
                None,
                ClientProfile::Broadband,
                group_addr(g, i),
                &mut clients,
            );
        }
    }
    for name in [
        "bb-pittsburgh-dsl",
        "bb-seattle-speakeasy",
        "bb-sanfrancisco-sbc",
    ] {
        let g = group;
        group += 1;
        push(
            name.to_string(),
            ClientCategory::Broadband,
            None,
            Some(g),
            None,
            ClientProfile::Broadband,
            group_addr(g, 0),
            &mut clients,
        );
    }

    FleetSpec {
        clients,
        proxy_count: 5,
        group_count: group,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn fleet_is_134_clients() {
        let fleet = build_fleet();
        assert_eq!(fleet.len(), 134);
        let count = |c: ClientCategory| {
            fleet
                .clients
                .iter()
                .filter(|cl| cl.category == c)
                .count()
        };
        assert_eq!(count(ClientCategory::PlanetLab), 95);
        assert_eq!(count(ClientCategory::Dialup), 26);
        assert_eq!(count(ClientCategory::CorpNet), 6);
        assert_eq!(count(ClientCategory::Broadband), 7);
    }

    #[test]
    fn exactly_35_colocated_pairs() {
        let fleet = build_fleet();
        let mut groups: HashMap<u16, usize> = HashMap::new();
        for c in &fleet.clients {
            if let Some(g) = c.colocation {
                *groups.entry(g).or_insert(0) += 1;
            }
        }
        let pairs: usize = groups.values().map(|&k| k * (k - 1) / 2).sum();
        assert_eq!(pairs, 35);
    }

    #[test]
    fn proxies_assigned_correctly() {
        let fleet = build_fleet();
        let proxied: Vec<_> = fleet
            .clients
            .iter()
            .filter(|c| c.proxy.is_some())
            .collect();
        assert_eq!(proxied.len(), 5);
        assert!(proxied.iter().all(|c| c.category == ClientCategory::CorpNet));
        let ids: HashSet<_> = proxied.iter().map(|c| c.proxy.unwrap()).collect();
        assert_eq!(ids.len(), 5, "each CN client has its own proxy");
        // SEAEXT exists, is CN, unproxied, and shares the SEA wan group.
        let seaext = fleet
            .clients
            .iter()
            .find(|c| c.name.starts_with("seaext"))
            .unwrap();
        assert!(seaext.proxy.is_none());
        let sea1 = fleet
            .clients
            .iter()
            .find(|c| c.name.starts_with("sea1"))
            .unwrap();
        assert_eq!(seaext.wan_group, sea1.wan_group);
        assert!(seaext.colocation.is_none(), "CN trio not in the 35 pairs");
    }

    #[test]
    fn addresses_unique() {
        let fleet = build_fleet();
        let addrs: HashSet<_> = fleet.clients.iter().map(|c| c.addr).collect();
        assert_eq!(addrs.len(), fleet.len());
    }

    #[test]
    fn colocated_clients_share_a_slash24() {
        let fleet = build_fleet();
        let mut by_group: HashMap<u16, Vec<Ipv4Addr>> = HashMap::new();
        for c in &fleet.clients {
            if let Some(g) = c.colocation {
                by_group.entry(g).or_default().push(c.addr);
            }
        }
        for (g, addrs) in by_group {
            let nets: HashSet<_> = addrs
                .iter()
                .map(|a| model::Ipv4Prefix::slash24_of(*a))
                .collect();
            assert_eq!(nets.len(), 1, "group {g} spans subnets");
        }
    }

    #[test]
    fn showcase_clients_present() {
        let fleet = build_fleet();
        assert!(fleet
            .clients
            .iter()
            .any(|c| c.name == "nodea.howard.edu" && c.profile == ClientProfile::PlBgpShowcase));
        assert!(fleet.clients.iter().any(
            |c| c.name.starts_with("planetlab1.kscy") && c.profile == ClientProfile::PlKscyShowcase
        ));
        let intel = fleet
            .clients
            .iter()
            .filter(|c| c.profile == ClientProfile::PlIntelShared)
            .count();
        assert_eq!(intel, 2);
        let columbia_noisy = fleet
            .clients
            .iter()
            .filter(|c| c.profile == ClientProfile::PlColumbiaNoisy)
            .count();
        assert_eq!(columbia_noisy, 2);
    }

    #[test]
    fn quarter_of_clients_have_two_prefixes() {
        let fleet = build_fleet();
        let extra = fleet.clients.iter().filter(|c| c.extra_prefix).count();
        // Every 4th client: 134/4 rounded up.
        assert_eq!(extra, 34);
    }

    #[test]
    fn wan_groups_cover_everyone() {
        let fleet = build_fleet();
        assert!(fleet.clients.iter().all(|c| c.wan_group.is_some()));
        assert!(fleet.group_count > 0);
        let max = fleet
            .clients
            .iter()
            .filter_map(|c| c.wan_group)
            .max()
            .unwrap();
        assert!(max < fleet.group_count);
    }
}
