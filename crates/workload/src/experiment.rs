//! The experiment runner: a month of web accesses plus the BGP feed.
//!
//! Determinism contract: every client draws from its own forked RNG stream
//! and reads only immutable shared state (zone tree, ground-truth
//! timelines), so the dataset is bit-identical regardless of thread count or
//! scheduling. Clients run in parallel with `std::thread::scope` under a
//! work-stealing scheduler: workers claim client indices from a shared
//! atomic counter, so per-client cost variance (dialup PoP cycling vs.
//! broadband) balances across workers instead of idling behind static
//! chunk boundaries.
//!
//! Fault tolerance contract: a client worker that panics (a node death from
//! the [`crate::apparatus`] model, or a genuine bug) loses that client's
//! records but never the run — the panic is caught, the client is reported
//! as lost in the [`RunReport`], and every other client's output is
//! untouched (their RNG streams are forked independently, so a lost sibling
//! cannot shift them).

use crate::apparatus::ApparatusFaults;
use crate::clients::{build_fleet, FleetSpec};
use crate::faults::{canonical_host, AdversarialProfile, GroundTruth};
use crate::forensics::{ExemplarStore, ForensicsConfig};
use crate::sites::{build_sites, site_addresses, SiteSpec};
use crate::view::{ClientView, ProxyView};
use bgpsim::mrt::{decode_stream_salvage, encode_stream, MrtPrefixTable};
use bgpsim::{aggregate, clean, generate, BgpScenario, ReconfigWindow, SevereEvent};
use dnssim::ZoneTree;
use dnswire::DomainName;
use model::{
    ClientId, ClientMeta, Dataset, ConnectionRecord, Ipv4Prefix, PerformanceRecord, PrefixId,
    ProvenanceLog, ProvenanceRecord, SimDuration, SimTime, SiteId, SiteMeta, TraceExemplar,
};
use netsim::{Scheduler, SimRng};
use webclient::{ClientSession, ProxySession, WgetConfig};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Scale and fidelity knobs for one experiment run.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    pub seed: u64,
    /// Horizon in hours (the paper's month is 744).
    pub hours: u32,
    /// Accesses of each URL per hour per client (the paper's rate is ~4).
    pub iterations_per_hour: u32,
    /// Round-trip DNS/HTTP messages through the wire codecs.
    pub wire_fidelity: bool,
    /// Capture packet traces on PL/DU clients (BB never records; CN traces
    /// are uninformative and skipped, as in the paper).
    pub record_traces: bool,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Multiplier on every ground-truth fault intensity (1.0 = the
    /// calibrated 2005 Internet; see
    /// [`GroundTruth::materialize_scaled`]).
    pub fault_scale: f64,
    /// Injected measurement-infrastructure faults (node deaths, record
    /// loss, feed corruption). [`ApparatusFaults::none`] leaves the run
    /// bit-for-bit identical to the healthy configuration.
    pub apparatus: ApparatusFaults,
    /// Run the fault-provenance flight recorder: stamp every transaction
    /// with the ground-truth faults active during it and export the
    /// [`ProvenanceLog`] sidecar. The dataset itself is bit-identical on or
    /// off — stamping reads materialized timelines only, never the RNG.
    pub record_provenance: bool,
    /// Adversarial fault-archetype intensities.
    /// [`AdversarialProfile::none`] (the default everywhere) draws nothing
    /// from any archetype stream and leaves the run bit-identical to a
    /// build without the suite.
    pub adversarial: AdversarialProfile,
    /// Forensic trace capture: `Some` tail-samples causal traces into an
    /// [`ExemplarStore`]. Like the provenance recorder, capture reads only
    /// materialized timelines — the dataset is bit-identical with tracing
    /// on, off, or compiled against `--no-default-features`.
    pub forensics: Option<ForensicsConfig>,
}

impl ExperimentConfig {
    /// Full paper scale: 744 hours × 4 accesses/hour × 80 sites × 134
    /// clients ≈ 32 M transactions. Heavy; wire fidelity off.
    pub fn paper_scale(seed: u64) -> Self {
        ExperimentConfig {
            seed,
            hours: 744,
            iterations_per_hour: 4,
            wire_fidelity: false,
            record_traces: true,
            threads: 0,
            fault_scale: 1.0,
            apparatus: ApparatusFaults::none(),
            record_provenance: false,
            adversarial: AdversarialProfile::none(),
            forensics: None,
        }
    }

    /// Default reproduction scale: the full month and fleet at 2
    /// accesses/hour (~16 M transactions). Rates and shares — what the
    /// paper's findings are about — are preserved; absolute counts halve.
    pub fn reproduction(seed: u64) -> Self {
        ExperimentConfig {
            iterations_per_hour: 2,
            ..Self::paper_scale(seed)
        }
    }

    /// A memory/allocator stress point between `quick` and `reproduction`:
    /// one week at the reproduction access rate without wire fidelity
    /// (~3.5 M transactions) — large enough to exercise column spills and
    /// capacity growth, small enough for a CI smoke run.
    pub fn stress(seed: u64) -> Self {
        ExperimentConfig {
            hours: 168,
            ..Self::reproduction(seed)
        }
    }

    /// A small run for integration tests and examples: full fleet, 72
    /// hours, 1 access/hour, full wire fidelity.
    pub fn quick(seed: u64) -> Self {
        ExperimentConfig {
            seed,
            hours: 72,
            iterations_per_hour: 1,
            wire_fidelity: true,
            record_traces: true,
            threads: 0,
            fault_scale: 1.0,
            apparatus: ApparatusFaults::none(),
            record_provenance: false,
            adversarial: AdversarialProfile::none(),
            forensics: None,
        }
    }

    /// Expected transaction count (modulo machine downtime).
    pub fn expected_transactions(&self) -> u64 {
        u64::from(self.hours) * u64::from(self.iterations_per_hour) * 80 * 134
    }

    /// FNV-1a digest of the complete config (via its `Debug` rendering), so
    /// a run manifest can prove which knob settings produced a dataset.
    /// Covers every field — adding a knob changes the digest by
    /// construction.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in format!("{self:?}").bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Everything a run produces: the dataset plus the ground truth it came
/// from (validation studies compare inference against this) and the
/// [`RunReport`] accounting for the apparatus itself.
pub struct ExperimentOutput {
    pub dataset: Dataset,
    pub truth: GroundTruth,
    pub fleet: FleetSpec,
    pub sites: Vec<SiteSpec>,
    pub report: RunReport,
    /// The flight recorder's sidecar (`Some` only when
    /// [`ExperimentConfig::record_provenance`] was set): one stamp per
    /// dataset record, parallel by index, plus the run's answer key.
    pub provenance: Option<ProvenanceLog>,
    /// Tail-sampled forensic exemplars (`Some` only when
    /// [`ExperimentConfig::forensics`] was set): per-(blame × archetype)
    /// bounded buckets of causal traces, record indices pointing into
    /// `dataset.records`.
    pub forensics: Option<ExemplarStore>,
}

/// What happened to one client's worker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientOutcome {
    /// The client's month completed. Counts are post-collection, i.e. after
    /// any apparatus record drops.
    Completed {
        records: usize,
        connections: usize,
        dropped_records: usize,
    },
    /// The worker panicked (node death or a bug); everything it gathered is
    /// gone.
    Lost { error: String },
}

impl ClientOutcome {
    pub fn is_lost(&self) -> bool {
        matches!(self, ClientOutcome::Lost { .. })
    }
}

/// Per-client entry of the [`RunReport`].
#[derive(Clone, Debug)]
pub struct ClientRunReport {
    pub client: ClientId,
    /// Host name, so a lost client can be named in operator output.
    pub name: String,
    pub outcome: ClientOutcome,
    /// Wall-clock time the worker spent on this client (diagnostic only —
    /// the one deliberately nondeterministic field of a run).
    pub wall: Duration,
}

/// Per-run accounting of the measurement apparatus: which clients ran,
/// which were lost, what collection dropped, and what feed salvage had to
/// quarantine. A healthy run has `is_clean() == true`.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    pub clients: Vec<ClientRunReport>,
    /// Performance records lost in collection, across all clients.
    pub records_dropped: u64,
    /// MRT records salvage-decoding recovered from the corrupted BGP feed
    /// (only non-zero when [`ApparatusFaults::corrupt_bgp_feed`] is set).
    pub mrt_records_kept: u64,
    /// MRT records quarantined while salvage-decoding the BGP feed (only
    /// non-zero when [`ApparatusFaults::corrupt_bgp_feed`] is set).
    pub mrt_issues: u64,
    /// First few quarantined-record descriptions, for operator output.
    pub mrt_issue_samples: Vec<String>,
    /// Rendered telemetry summary for the run (counters, histograms, span
    /// aggregates). `None` unless the recorder was enabled during the run.
    pub telemetry_summary: Option<String>,
    /// Worker threads actually used (the resolved value of
    /// [`ExperimentConfig::threads`] `== 0`).
    pub threads_effective: usize,
    /// Wall-clock time per pipeline stage, in execution order (diagnostic
    /// only — nondeterministic, like the per-client `wall` fields).
    pub stage_walls: Vec<(&'static str, Duration)>,
}

impl RunReport {
    /// Ids of clients whose workers were lost.
    pub fn lost_clients(&self) -> Vec<ClientId> {
        self.clients
            .iter()
            .filter(|c| c.outcome.is_lost())
            .map(|c| c.client)
            .collect()
    }

    /// Names of lost clients (for human-facing summaries).
    pub fn lost_names(&self) -> Vec<&str> {
        self.clients
            .iter()
            .filter(|c| c.outcome.is_lost())
            .map(|c| c.name.as_str())
            .collect()
    }

    /// Records that made it into the dataset.
    pub fn records_kept(&self) -> u64 {
        self.clients
            .iter()
            .map(|c| match c.outcome {
                ClientOutcome::Completed { records, .. } => records as u64,
                ClientOutcome::Lost { .. } => 0,
            })
            .sum()
    }

    /// No lost clients, no dropped records, no quarantined feed records.
    pub fn is_clean(&self) -> bool {
        self.clients.iter().all(|c| !c.outcome.is_lost())
            && self.records_dropped == 0
            && self.mrt_issues == 0
    }

    /// Condense this report into the renderable
    /// [`report::QuarantineSummary`] block.
    pub fn quarantine_summary(&self) -> report::QuarantineSummary {
        let salvage = if self.mrt_issues > 0 || self.mrt_records_kept > 0 {
            vec![report::SalvageLine {
                source: "bgp-mrt".to_string(),
                kept: self.mrt_records_kept,
                quarantined: self.mrt_issues,
                samples: self.mrt_issue_samples.clone(),
            }]
        } else {
            Vec::new()
        };
        report::QuarantineSummary {
            clients_total: self.clients.len(),
            clients_lost: self.lost_names().iter().map(|s| s.to_string()).collect(),
            records_kept: self.records_kept(),
            records_dropped: self.records_dropped,
            salvage,
        }
    }
}

/// Render a caught panic payload as an error string for the [`RunReport`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "client worker panicked with a non-string payload".to_string()
    }
}

/// Run the experiment.
pub fn run_experiment(config: &ExperimentConfig) -> ExperimentOutput {
    let mut stage_walls: Vec<(&'static str, Duration)> = Vec::new();
    let mut stage_start = Instant::now();
    let horizon_us = u64::from(config.hours) * 3_600_000_000;
    let build_span = telemetry::span!("workload.build_world")
        .with_detail(|| format!("seed={} hours={}", config.seed, config.hours));
    let fleet = build_fleet();
    let sites = build_sites();
    let truth = GroundTruth::materialize_with(
        &fleet,
        &sites,
        config.hours,
        config.seed,
        config.fault_scale,
        &config.adversarial,
    );

    // --- DNS world -----------------------------------------------------
    let mut hosts: Vec<(DomainName, Vec<Ipv4Addr>)> = Vec::new();
    let mut host_names: Vec<DomainName> = Vec::with_capacity(sites.len());
    for (si, s) in sites.iter().enumerate() {
        let name: DomainName = s.hostname.parse().expect("valid hostname");
        let addrs = site_addresses(si, s.layout);
        hosts.push((name.clone(), addrs.clone()));
        if s.redirect_hop {
            let canonical: DomainName = canonical_host(s.hostname).parse().expect("valid");
            hosts.push((canonical, addrs));
        }
        host_names.push(name);
    }
    let tree = ZoneTree::build_for_hosts(&hosts);

    // --- Prefix table -----------------------------------------------------
    let (prefixes, client_prefix_ids, site_prefix_ids, extra_ids) =
        build_prefixes(&fleet, &sites);

    drop(build_span);
    stage_walls.push(("build_world", stage_start.elapsed()));
    stage_start = Instant::now();

    // --- BGP feed -----------------------------------------------------------
    let (bgp, mrt_records_kept, mrt_issues, mrt_issue_samples) = {
        let _span = telemetry::span!("workload.build_bgp");
        build_bgp(config, &truth, &prefixes)
    };
    stage_walls.push(("build_bgp", stage_start.elapsed()));
    stage_start = Instant::now();

    // --- Access schedule + sessions, per client ------------------------------
    let mut clients_span = telemetry::span!("workload.simulate_clients");
    clients_span.set_sim_range(0, horizon_us);
    let root = SimRng::new(config.seed);
    let n_clients = fleet.len();
    // One slot per client: `None` if the worker never reported (it died
    // before writing), otherwise the client's output or its panic message,
    // plus the worker's wall time.
    type ClientData = (
        Vec<PerformanceRecord>,
        Vec<ConnectionRecord>,
        Vec<ProvenanceRecord>,
        Option<ExemplarStore>,
    );
    type ClientSlot = (Result<ClientData, String>, Duration);

    let threads = if config.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        config.threads
    };

    // Work-stealing scheduler: workers claim client indices from a shared
    // atomic counter instead of walking static chunks, so a straggler client
    // (dialup PoP cycling, heavy fault hours) never idles the other workers
    // behind a pre-assigned boundary. Determinism is unaffected — each
    // client's simulation runs on its own RNG stream forked by client index,
    // and the collection loop below reads the slots in client order — so
    // only the claim order varies between runs, never the data.
    let per_client: Vec<Option<ClientSlot>> = {
        let truth = &truth;
        let tree = &tree;
        let fleet = &fleet;
        let host_names = &host_names;
        let root = &root;
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<ClientSlot>>> =
            (0..n_clients).map(|_| Mutex::new(None)).collect();
        let workers = threads.min(n_clients).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let next = &next;
                let slots = &slots;
                scope.spawn(move || {
                    let mut claimed = 0u64;
                    loop {
                        let client = next.fetch_add(1, Ordering::Relaxed);
                        if client >= n_clients {
                            break;
                        }
                        claimed += 1;
                        let started = Instant::now();
                        // A panicking client (apparatus node death, or a
                        // real bug) must cost exactly one client, never the
                        // run: catch it here, inside the worker loop, so
                        // this worker keeps claiming further clients. The
                        // slot lock cannot be poisoned — the panic is
                        // already caught before the lock is taken.
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                            || run_client(config, truth, tree, fleet, host_names, root, client),
                        ))
                        .map_err(panic_message);
                        *slots[client].lock().expect("client slot lock") =
                            Some((result, started.elapsed()));
                    }
                    telemetry::histogram!("workload.clients_per_worker", claimed);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("client slot lock"))
            .collect()
    };

    drop(clients_span);
    stage_walls.push(("simulate_clients", stage_start.elapsed()));
    stage_start = Instant::now();

    // --- Collection: gather surviving output, account for the rest ----------
    let _collect_span = telemetry::span!("workload.collect");
    let mut records = Vec::new();
    let mut connections = Vec::new();
    let mut provenance_records = Vec::new();
    // Per-client stores merge in client-index order, which reproduces what
    // one sequential store would have admitted (every per-client bucket
    // holds at least as many candidates as the merged cap).
    let mut forensics: Option<ExemplarStore> =
        config.forensics.as_ref().map(|_| ExemplarStore::default());
    let mut report = RunReport {
        mrt_records_kept,
        mrt_issues,
        mrt_issue_samples,
        ..RunReport::default()
    };
    let drop_prob = config.apparatus.record_drop_prob;
    for (i, slot) in per_client.into_iter().enumerate() {
        let (outcome, wall) = match slot {
            // A scope panic outside catch_unwind would abort the run before
            // this point; an unwritten slot is still reported, not expected
            // away, so a scheduling bug degrades to a lost client.
            None => {
                telemetry::counter!("workload.clients_lost", 1);
                (
                    ClientOutcome::Lost {
                        error: "worker never reported a result".to_string(),
                    },
                    Duration::ZERO,
                )
            }
            Some((Err(error), wall)) => {
                telemetry::counter!("workload.clients_lost", 1);
                (ClientOutcome::Lost { error }, wall)
            }
            Some((Ok((mut r, mut c, mut p, mut store)), wall)) => {
                let mut dropped = 0usize;
                if drop_prob > 0.0 {
                    // Collection loss draws from a per-client fork of the
                    // root stream, so the surviving set is identical across
                    // thread counts. The keep mask is materialized first —
                    // one draw per record, in record order, whether or not
                    // the provenance sidecar rides along — and then applied
                    // to records and stamps alike, keeping the sidecar
                    // parallel-by-index to the surviving records.
                    let mut rng = config.apparatus.drop_stream(&root, i);
                    let keep_mask: Vec<bool> =
                        r.iter().map(|_| rng.f64() >= drop_prob).collect();
                    let mut k = keep_mask.iter().copied();
                    r.retain(|_| {
                        let keep = k.next().expect("mask covers records");
                        dropped += usize::from(!keep);
                        keep
                    });
                    if !p.is_empty() {
                        let mut k = keep_mask.iter().copied();
                        p.retain(|_| k.next().expect("mask covers stamps"));
                    }
                    // Exemplars whose record was dropped go with it; the
                    // survivors' indices are remapped to the kept ranks so
                    // they keep pointing at the right rows.
                    if let Some(s) = store.as_mut() {
                        s.apply_keep_mask(&keep_mask);
                    }
                }
                report.records_dropped += dropped as u64;
                telemetry::counter!("workload.records_dropped", dropped as u64);
                let outcome = ClientOutcome::Completed {
                    records: r.len(),
                    connections: c.len(),
                    dropped_records: dropped,
                };
                if let (Some(global), Some(mut s)) = (forensics.as_mut(), store) {
                    s.rebase(records.len());
                    global.merge(s);
                }
                records.append(&mut r);
                connections.append(&mut c);
                provenance_records.append(&mut p);
                (outcome, wall)
            }
        };
        report.clients.push(ClientRunReport {
            client: ClientId(i as u16),
            name: fleet.clients[i].name.clone(),
            outcome,
            wall,
        });
    }

    // --- Metadata ------------------------------------------------------------
    let clients_meta: Vec<ClientMeta> = fleet
        .clients
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let mut pfx = vec![client_prefix_ids[i]];
            if let Some(extra) = extra_ids[i] {
                pfx.push(extra);
            }
            ClientMeta {
                id: ClientId(i as u16),
                name: c.name.clone(),
                category: c.category,
                colocation: c.colocation,
                proxy: c.proxy,
                prefixes: pfx,
                addr: c.addr,
            }
        })
        .collect();
    let sites_meta: Vec<SiteMeta> = sites
        .iter()
        .enumerate()
        .map(|(si, s)| {
            let addrs = site_addresses(si, s.layout);
            let replica_prefixes = addrs
                .iter()
                .map(|a| (*a, vec![site_prefix_ids[si]]))
                .collect();
            SiteMeta {
                id: SiteId(si as u16),
                hostname: s.hostname.to_string(),
                category: s.category,
                addrs,
                replica_prefixes,
            }
        })
        .collect();

    let dataset = Dataset {
        hours: config.hours,
        clients: clients_meta,
        sites: sites_meta,
        records,
        connections,
        prefixes,
        bgp,
    };
    let provenance = config.record_provenance.then(|| {
        let _span = telemetry::span!("workload.provenance_sidecar");
        debug_assert_eq!(
            provenance_records.len(),
            dataset.records.len(),
            "sidecar must stay parallel to the dataset"
        );
        telemetry::counter!(
            "workload.provenance_stamps",
            provenance_records.len() as u64
        );
        ProvenanceLog {
            records: provenance_records,
            truth: truth.truth_sidecar(&sites),
        }
    });
    report.threads_effective = threads.min(n_clients).max(1);
    report.stage_walls = stage_walls;
    report
        .stage_walls
        .push(("collect", stage_start.elapsed()));
    if telemetry::enabled() {
        telemetry::counter!("workload.mrt_records_kept", report.mrt_records_kept);
        telemetry::counter!("workload.mrt_records_quarantined", report.mrt_issues);
        record_dataset_counters(&dataset);
        report.telemetry_summary = Some(telemetry::snapshot().render_summary());
    }
    if let Some(store) = forensics.as_ref() {
        telemetry::counter!("workload.forensic_exemplars", store.len() as u64);
    }
    ExperimentOutput {
        dataset,
        truth,
        fleet,
        sites,
        report,
        provenance,
        forensics,
    }
}

/// Mirror the collected dataset's per-category transaction and connection
/// outcomes into telemetry counters. Counted post-collection — after lost
/// clients and record drops — so the totals agree exactly with what
/// `netprofiler::summary::table3` computes from the same dataset (held by
/// `tests/telemetry_consistency.rs`).
fn record_dataset_counters(ds: &Dataset) {
    const LABELS: [&str; 4] = ["PL", "DU", "CN", "BB"];
    static TXNS: telemetry::CounterVec<4> =
        telemetry::CounterVec::new("workload.transactions", LABELS);
    static FAILED_TXNS: telemetry::CounterVec<4> =
        telemetry::CounterVec::new("workload.failed_transactions", LABELS);
    static CONNS: telemetry::CounterVec<4> =
        telemetry::CounterVec::new("workload.connections", LABELS);
    static FAILED_CONNS: telemetry::CounterVec<4> =
        telemetry::CounterVec::new("workload.failed_connections", LABELS);
    let cat_index = |c: model::ClientCategory| {
        model::ClientCategory::ALL
            .iter()
            .position(|&x| x == c)
            .expect("category in ALL")
    };
    for r in &ds.records {
        let i = cat_index(ds.client(r.client).category);
        TXNS.add(i, 1);
        FAILED_TXNS.add(i, u64::from(r.failed()));
    }
    for c in &ds.connections {
        let i = cat_index(ds.client(c.client).category);
        CONNS.add(i, 1);
        FAILED_CONNS.add(i, u64::from(c.failed()));
    }
}

/// Prefix-table layout (must stay in sync with
/// `faults::derive_severe_events`): indices `0..group_count` are the client
/// /24s (by wan group), `group_count..group_count+80` the per-site /16s,
/// and the remainder the extra /16s covering every 4th client.
fn build_prefixes(
    fleet: &FleetSpec,
    sites: &[SiteSpec],
) -> (
    Vec<Ipv4Prefix>,
    Vec<PrefixId>,
    Vec<PrefixId>,
    Vec<Option<PrefixId>>,
) {
    let mut prefixes: Vec<Ipv4Prefix> = Vec::new();
    // Client group /24s.
    for g in 0..fleet.group_count {
        let base = Ipv4Addr::new(10, (g / 200) as u8, (g % 200) as u8, 0);
        prefixes.push(Ipv4Prefix::new(base, 24).expect("valid"));
    }
    // Site /16s.
    let mut site_prefix_ids = Vec::with_capacity(sites.len());
    for (si, s) in sites.iter().enumerate() {
        let first = site_addresses(si, s.layout)[0];
        let octets = first.octets();
        site_prefix_ids.push(PrefixId(prefixes.len() as u32));
        prefixes.push(
            Ipv4Prefix::new(Ipv4Addr::new(octets[0], octets[1], 0, 0), 16).expect("valid"),
        );
    }
    // Client prefix ids + extra covering /16s.
    let mut client_prefix_ids = Vec::with_capacity(fleet.len());
    let mut extra_ids = Vec::with_capacity(fleet.len());
    for c in &fleet.clients {
        let g = c.wan_group.expect("all clients grouped");
        client_prefix_ids.push(PrefixId(u32::from(g)));
        if c.extra_prefix {
            let octets = c.addr.octets();
            let covering =
                Ipv4Prefix::new(Ipv4Addr::new(octets[0], octets[1], 0, 0), 16).expect("valid");
            let id = match prefixes.iter().position(|p| *p == covering) {
                Some(i) => PrefixId(i as u32),
                None => {
                    prefixes.push(covering);
                    PrefixId((prefixes.len() - 1) as u32)
                }
            };
            extra_ids.push(Some(id));
        } else {
            extra_ids.push(None);
        }
    }
    (prefixes, client_prefix_ids, site_prefix_ids, extra_ids)
}

/// Generate, aggregate and clean the BGP feed.
///
/// When apparatus feed corruption is enabled, the generated update stream
/// is round-tripped through real MRT bytes, corrupted, and salvage-decoded
/// — the hourly series is then computed from what salvage recovered, and
/// the quarantined-record count flows into the [`RunReport`].
fn build_bgp(
    config: &ExperimentConfig,
    truth: &GroundTruth,
    prefixes: &[Ipv4Prefix],
) -> (model::BgpHourlySeries, u64, u64, Vec<String>) {
    let prefix_count = prefixes.len();
    let severe_events: Vec<SevereEvent> = truth
        .severe_bgp
        .iter()
        .map(|e| SevereEvent {
            prefix: PrefixId(e.prefix_index),
            hour: e.hour,
            neighbors: e.neighbors,
            withdrawals_per_neighbor: e.withdrawals_per_neighbor,
            announcements_per_neighbor: 2,
        })
        .collect();
    let mut scenario = BgpScenario::quiet(prefix_count, config.hours);
    scenario.severe_events = severe_events;
    // Adversarial reconfiguration windows (empty unless the profile enabled
    // the bgp-transient archetype) ride into the feed alongside the severe
    // events, each drawing only from its own per-window fork.
    scenario.reconfig_windows = truth
        .adversarial
        .reconfig_windows
        .iter()
        .map(|w| ReconfigWindow {
            prefix: PrefixId(w.prefix_index),
            hour: w.hour,
            peers: w.peers,
            bursts: w.bursts,
        })
        .collect();
    // A collector reset roughly every 10 days.
    let mut rng = SimRng::new(config.seed).fork_str("bgp-resets");
    let mut h = 0u32;
    while h < config.hours {
        h += 120 + rng.below(240) as u32;
        if h < config.hours {
            scenario.reset_hours.push(h);
        }
    }
    let raw = generate(&scenario, &mut SimRng::new(config.seed).fork_str("bgp-gen"));

    let mut kept_count = 0u64;
    let mut issue_count = 0u64;
    let mut issue_samples = Vec::new();
    let updates = if config.apparatus.corrupt_bgp_feed {
        let table = MrtPrefixTable::new(prefixes);
        let mut wire = encode_stream(&raw.updates, &table);
        let mut rng = SimRng::new(config.seed).fork_str("apparatus-mrt");
        config.apparatus.corrupt_buffer(&mut rng, &mut wire);
        let (salvaged, issues) = decode_stream_salvage(&wire, &table);
        kept_count = salvaged.len() as u64;
        issue_count = issues.len() as u64;
        issue_samples = issues
            .iter()
            .take(8)
            .map(|i| format!("MRT offset {}: {}", i.offset, i.error))
            .collect();
        salvaged
    } else {
        raw.updates
    };

    let series = aggregate(&updates, prefix_count, config.hours);
    let (cleaned, _report) = clean(&series, &raw.hourly_unique_prefixes);
    (cleaned, kept_count, issue_count, issue_samples)
}

/// One client's discrete-event timeline. Iteration-start events draw the
/// iteration's randomness (burst offset, URL order, jitters) and schedule
/// the accesses; access events run transactions as the clock reaches them.
///
/// RNG draws happen only in `IterationStart` handlers, whose timestamps
/// (`iter * iter_len`) are strictly increasing, so the client stream's draw
/// order is the iteration order — identical to the former nested-loop
/// runner. Access events execute in event-time order; within one iteration
/// access times are strictly monotone in schedule order (the jitter is
/// bounded by `slot / 4 < slot`), so records also come out in the loop
/// runner's order whenever iteration windows don't overlap (they overlap
/// only for dial-up bursts at ≥4 accesses/hour, where the batch outlasts
/// the window).
enum ClientEvent {
    IterationStart(u64),
    Access(usize),
}

/// Run one client's month.
fn run_client(
    config: &ExperimentConfig,
    truth: &GroundTruth,
    tree: &ZoneTree,
    fleet: &FleetSpec,
    host_names: &[DomainName],
    root: &SimRng,
    client: usize,
) -> (
    Vec<PerformanceRecord>,
    Vec<ConnectionRecord>,
    Vec<ProvenanceRecord>,
    Option<ExemplarStore>,
) {
    let spec = &fleet.clients[client];
    let mut rng = root.fork(0x90_0000 + client as u64);
    // Apparatus node death: the worker genuinely panics at the drawn
    // instant (caught by the runner's catch_unwind). The draw uses its own
    // stream, so enabling it never perturbs the simulated accesses.
    let death = config.apparatus.death_time(root, client, config.hours);
    let record_traces = config.record_traces
        && matches!(
            spec.category,
            model::ClientCategory::PlanetLab | model::ClientCategory::Dialup
        );
    let mut wget = WgetConfig {
        record_traces,
        no_cache: spec.proxy.is_some(),
        record_provenance: config.record_provenance,
        forensics: config.forensics.is_some(),
        ..WgetConfig::default()
    };
    wget.resolver.wire_fidelity = config.wire_fidelity;
    wget.http_wire_fidelity = config.wire_fidelity;

    let view = ClientView::new(truth, client as u16);
    let mut session = ClientSession::new(tree, wget, rng.fork(1));
    let mut proxy_session = spec
        .proxy
        .map(|p| (p, ProxySession::new(Default::default(), rng.fork(2)), ProxyView::new(truth, p.0)));

    let iterations = u64::from(config.hours) * u64::from(config.iterations_per_hour);
    let iter_len = 3_600_000_000u64 / u64::from(config.iterations_per_hour); // µs
    let n_sites = host_names.len();
    // Dialup clients dial a PoP and download every URL at a stretch before
    // hanging up (Section 3.4); everyone else spreads accesses over the
    // iteration window.
    let burst = spec.category == model::ClientCategory::Dialup;
    let slot = if burst {
        12_000_000 // ~12 s between URLs while dialed in
    } else {
        iter_len / n_sites as u64
    };

    // Size the month's output up front: one record per scheduled access,
    // and (for direct clients) roughly 1.05–1.6 connections per record, so
    // the collection loop never reallocates mid-run.
    let accesses = (iterations as usize).saturating_mul(n_sites);
    let mut records = Vec::with_capacity(accesses);
    let mut connections = if spec.proxy.is_some() {
        Vec::new()
    } else {
        Vec::with_capacity(accesses + accesses / 2)
    };
    let mut provenance = if config.record_provenance {
        Vec::with_capacity(accesses)
    } else {
        Vec::new()
    };
    let mut exemplars = config
        .forensics
        .as_ref()
        .map(|f| ExemplarStore::new(&f.pin));
    let mut order: Vec<usize> = (0..n_sites).collect();

    let mut month_span = telemetry::span!("workload.client_month")
        .with_detail(|| format!("{} ({})", spec.name, spec.category.abbrev()));
    month_span.set_sim_range(0, u64::from(config.hours) * 3_600_000_000);

    let mut sched: Scheduler<ClientEvent> = Scheduler::new();
    if iterations > 0 {
        sched.schedule_at(SimTime::ZERO, ClientEvent::IterationStart(0));
    }
    sched.run_with(|sched, now, ev| {
        match ev {
            ClientEvent::IterationStart(iter) => {
                if iter + 1 < iterations {
                    sched.schedule_at(
                        SimTime::from_micros((iter + 1) * iter_len),
                        ClientEvent::IterationStart(iter + 1),
                    );
                }
                let mut base = now;
                if burst {
                    // Dial in at a random point of the window that leaves
                    // room for the whole batch.
                    let batch = slot * n_sites as u64;
                    let slack = iter_len.saturating_sub(batch).max(1);
                    base += SimDuration::from_micros(rng.below(slack));
                }
                // Randomized URL order each iteration (Section 3.1).
                rng.shuffle(&mut order);
                for (k, &si) in order.iter().enumerate() {
                    let jitter = rng.below(slot / 4);
                    let t = base + SimDuration::from_micros(k as u64 * slot + jitter);
                    sched.schedule_at(t, ClientEvent::Access(si));
                }
            }
            ClientEvent::Access(si) => {
                let t = now;
                if let Some(d) = death {
                    if t >= d {
                        panic!(
                            "apparatus: client {client} node died at {}s",
                            d.as_micros() / 1_000_000
                        );
                    }
                }
                if truth.machine_down(client, t) {
                    telemetry::counter!("workload.accesses_skipped_down", 1);
                    return true;
                }
                telemetry::counter!("workload.accesses_attempted", 1);
                let mut obs = match proxy_session.as_mut() {
                    Some((_, ps, pview)) => {
                        session.run_proxied_transaction(&view, ps, pview, &host_names[si], t)
                    }
                    None => session.run_transaction(&view, &host_names[si], t),
                };
                let cid = ClientId(client as u16);
                let sid = SiteId(si as u16);
                for c in &obs.connections {
                    connections.push(ConnectionRecord {
                        client: cid,
                        site: sid,
                        replica: c.replica,
                        start: c.start,
                        outcome: c.outcome,
                        syn_retransmissions: c.syn_retransmissions,
                        retransmissions: c.retransmissions,
                    });
                }
                records.push(PerformanceRecord {
                    client: cid,
                    site: sid,
                    replica: obs.replica,
                    start: obs.start,
                    dns: obs.dns,
                    outcome: obs.outcome,
                    download_time: obs.download_time,
                    bytes_received: obs.bytes_received,
                    connections_attempted: obs.connections.len() as u16,
                    retransmissions: obs.retransmissions,
                    dig: obs.dig,
                    proxy: spec.proxy,
                });
                if config.record_provenance {
                    // One stamp per record, same order — the sidecar stays
                    // parallel-by-index through in-order collection.
                    provenance.push(obs.provenance.unwrap_or_default());
                }
                if let Some(store) = exemplars.as_mut() {
                    if let Some(tr) = obs.trace.take() {
                        store.offer(TraceExemplar {
                            client: client as u16,
                            site: si as u16,
                            hour: obs.start.hour_bin(),
                            record_index: records.len() - 1,
                            start: obs.start,
                            duration_us: (obs.dns.unwrap_or(SimDuration::ZERO)
                                + obs.download_time.unwrap_or(SimDuration::ZERO))
                            .as_micros(),
                            failed: obs.outcome.is_failure(),
                            truth: tr.truth(),
                            trace: tr,
                        });
                    }
                }
                // The observation is fully copied out; hand its buffers back
                // for the next access.
                session.recycle(obs);
            }
        }
        true
    });
    // Scheduler drop flushes this client's engine counters (events
    // dispatched, peak queue depth) into the global recorder.
    drop(sched);
    (records, connections, provenance, exemplars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use model::ClientCategory;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            seed: 5,
            hours: 12,
            iterations_per_hour: 1,
            wire_fidelity: true,
            record_traces: true,
            threads: 0,
            fault_scale: 1.0,
            apparatus: ApparatusFaults::none(),
            record_provenance: false,
            adversarial: AdversarialProfile::none(),
            forensics: None,
        }
    }

    #[test]
    fn tiny_run_produces_records_for_everyone() {
        let out = run_experiment(&tiny());
        let ds = &out.dataset;
        assert_eq!(ds.clients.len(), 134);
        assert_eq!(ds.sites.len(), 80);
        // ~12×80×134 = 128k minus machine downtime.
        let expected = tiny().expected_transactions() as usize;
        assert!(ds.records.len() > expected * 90 / 100, "{}", ds.records.len());
        assert!(ds.records.len() <= expected);
        // Every client made accesses.
        let mut per_client = vec![0usize; 134];
        for r in &ds.records {
            per_client[r.client.0 as usize] += 1;
        }
        assert!(per_client.iter().all(|&n| n > 0));
    }

    #[test]
    fn connection_counts_exceed_transactions_for_direct_clients() {
        let out = run_experiment(&tiny());
        let ds = &out.dataset;
        let direct_txns = ds
            .records
            .iter()
            .filter(|r| r.proxy.is_none())
            .count();
        assert!(
            ds.connections.len() > direct_txns,
            "{} conns vs {} direct txns",
            ds.connections.len(),
            direct_txns
        );
        // Ratio in the paper's ballpark (1.2–1.3).
        let ratio = ds.connections.len() as f64 / direct_txns as f64;
        assert!((1.05..1.6).contains(&ratio), "ratio {ratio}");
        // CN clients have no connection records (masked by the proxy).
        for c in ds.clients_in(ClientCategory::CorpNet) {
            if c.proxy.is_some() {
                assert!(ds.connections.iter().all(|conn| conn.client != c.id));
            }
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let mut cfg = tiny();
        cfg.hours = 6;
        cfg.threads = 1;
        let a = run_experiment(&cfg);
        cfg.threads = 7;
        let b = run_experiment(&cfg);
        assert_eq!(a.dataset.records.len(), b.dataset.records.len());
        assert_eq!(a.dataset.connections.len(), b.dataset.connections.len());
        for (x, y) in a.dataset.records.iter().zip(&b.dataset.records) {
            assert_eq!(x.client, y.client);
            assert_eq!(x.site, y.site);
            assert_eq!(x.start, y.start);
            assert_eq!(x.outcome, y.outcome);
        }
    }

    #[test]
    fn forensics_capture_is_bounded_and_invisible_to_the_dataset() {
        use crate::forensics::{ARCHETYPE_SLOTS, BLAME_CLASSES};
        let mut cfg = tiny();
        cfg.hours = 6;
        cfg.wire_fidelity = false;
        let plain = run_experiment(&cfg);
        assert!(plain.forensics.is_none(), "off by default");
        cfg.forensics = Some(ForensicsConfig::default());
        let traced = run_experiment(&cfg);
        let store = traced.forensics.as_ref().expect("store produced");
        assert!(!store.is_empty(), "a faulty month yields exemplars");
        assert!(
            store.len() <= BLAME_CLASSES * ARCHETYPE_SLOTS * 2 * report::caps::MAX_SAMPLES,
            "bounded by the bucket grid, got {}",
            store.len()
        );
        // Tracing perturbs nothing: record streams are identical.
        assert_eq!(plain.dataset.records.len(), traced.dataset.records.len());
        assert_eq!(
            plain.dataset.connections.len(),
            traced.dataset.connections.len()
        );
        for (a, b) in plain.dataset.records.iter().zip(&traced.dataset.records) {
            assert_eq!((a.client, a.site, a.start, &a.outcome), (b.client, b.site, b.start, &b.outcome));
        }
        // Exemplar record indices point at rows with matching identity.
        for ex in store.iter() {
            let r = &traced.dataset.records[ex.record_index];
            assert_eq!((r.client.0, r.site.0), (ex.client, ex.site));
            assert_eq!(r.start, ex.start);
            assert_eq!(r.failed(), ex.failed);
        }
        // And the store itself is thread-invariant.
        cfg.threads = 1;
        let t1 = run_experiment(&cfg);
        cfg.threads = 7;
        let t7 = run_experiment(&cfg);
        let flat = |s: &ExemplarStore| -> Vec<(u16, u16, u32, usize, bool)> {
            s.iter()
                .map(|e| (e.client, e.site, e.hour, e.record_index, e.failed))
                .collect()
        };
        assert_eq!(
            flat(t1.forensics.as_ref().unwrap()),
            flat(t7.forensics.as_ref().unwrap())
        );
    }

    #[test]
    fn prefix_table_covers_everyone() {
        let out = run_experiment(&tiny());
        let ds = &out.dataset;
        for c in &ds.clients {
            assert!(!c.prefixes.is_empty());
            for p in &c.prefixes {
                assert!(ds.prefix(*p).contains(c.addr), "{} not covered", c.name);
            }
        }
        for s in &ds.sites {
            for (addr, pfx) in &s.replica_prefixes {
                for p in pfx {
                    assert!(ds.prefix(*p).contains(*addr));
                }
            }
        }
        // ~a quarter of clients carry a second prefix.
        let two = ds.clients.iter().filter(|c| c.prefixes.len() == 2).count();
        assert_eq!(two, 34);
    }

    #[test]
    fn bgp_series_has_severe_activity() {
        let mut cfg = tiny();
        cfg.hours = 48;
        let out = run_experiment(&cfg);
        let ds = &out.dataset;
        let severe = ds
            .bgp
            .active_cells()
            .filter(|(_, _, cell)| cell.neighbors_withdrawing >= 70)
            .count();
        // Showcase clients plus coupled server events, scaled to 48 h.
        assert!(severe >= 1, "no severe BGP cells");
    }

    #[test]
    fn config_digest_is_stable_and_knob_sensitive() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.digest(), b.digest());
        let mut c = tiny();
        c.seed += 1;
        assert_ne!(a.digest(), c.digest());
        let mut d = tiny();
        d.fault_scale = 2.0;
        assert_ne!(a.digest(), d.digest());
    }

    #[test]
    fn run_report_records_stage_walls_in_order() {
        let mut cfg = tiny();
        cfg.hours = 2;
        cfg.threads = 3;
        let out = run_experiment(&cfg);
        let names: Vec<&str> = out.report.stage_walls.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            ["build_world", "build_bgp", "simulate_clients", "collect"]
        );
        assert_eq!(out.report.threads_effective, 3);
    }

    #[test]
    fn healthy_run_report_is_clean() {
        let out = run_experiment(&tiny());
        assert!(out.report.is_clean());
        assert!(out.report.lost_clients().is_empty());
        assert_eq!(out.report.clients.len(), 134);
        assert_eq!(out.report.records_kept() as usize, out.dataset.records.len());
        for c in &out.report.clients {
            match &c.outcome {
                ClientOutcome::Completed {
                    records,
                    dropped_records,
                    ..
                } => {
                    assert!(*records > 0, "{} made no accesses", c.name);
                    assert_eq!(*dropped_records, 0);
                }
                ClientOutcome::Lost { error } => panic!("{} lost: {error}", c.name),
            }
        }
    }

    #[test]
    fn node_deaths_lose_clients_not_the_run() {
        let mut cfg = tiny();
        cfg.wire_fidelity = false;
        cfg.apparatus = ApparatusFaults {
            client_death_prob: 0.2,
            ..ApparatusFaults::none()
        };
        let out = run_experiment(&cfg);
        let lost = out.report.lost_clients();
        assert!(!lost.is_empty(), "p=0.2 over 134 clients must kill some");
        assert!(lost.len() < 134, "and most must survive");
        // Lost clients left no records; survivors all did.
        for c in &out.report.clients {
            let n = out
                .dataset
                .records
                .iter()
                .filter(|r| r.client == c.client)
                .count();
            match &c.outcome {
                ClientOutcome::Lost { error } => {
                    assert_eq!(n, 0, "{} died but left records", c.name);
                    assert!(error.contains("died"), "unexpected panic text: {error}");
                }
                ClientOutcome::Completed { records, .. } => assert_eq!(n, *records),
            }
        }
        // Survivors' records are identical to the healthy run's.
        let healthy = run_experiment(&{
            let mut c = cfg.clone();
            c.apparatus = ApparatusFaults::none();
            c
        });
        let lost_set: std::collections::HashSet<ClientId> = lost.into_iter().collect();
        let surviving: Vec<_> = healthy
            .dataset
            .records
            .iter()
            .filter(|r| !lost_set.contains(&r.client))
            .collect();
        assert_eq!(surviving.len(), out.dataset.records.len());
        for (a, b) in surviving.iter().zip(&out.dataset.records) {
            assert_eq!(a.start, b.start);
            assert_eq!(a.outcome, b.outcome);
        }
    }

    #[test]
    fn record_drops_are_accounted_exactly() {
        let mut cfg = tiny();
        cfg.hours = 6;
        cfg.wire_fidelity = false;
        cfg.apparatus = ApparatusFaults {
            record_drop_prob: 0.05,
            ..ApparatusFaults::none()
        };
        let out = run_experiment(&cfg);
        assert!(out.report.records_dropped > 0);
        assert_eq!(
            out.report.records_kept() as usize,
            out.dataset.records.len()
        );
        let healthy = run_experiment(&{
            let mut c = cfg.clone();
            c.apparatus = ApparatusFaults::none();
            c
        });
        assert_eq!(
            out.dataset.records.len() as u64 + out.report.records_dropped,
            healthy.dataset.records.len() as u64
        );
        // Dropped rate in the configured ballpark.
        let rate = out.report.records_dropped as f64 / healthy.dataset.records.len() as f64;
        assert!((0.03..0.08).contains(&rate), "drop rate {rate}");
        // Connections are never dropped by this mechanism.
        assert_eq!(
            out.dataset.connections.len(),
            healthy.dataset.connections.len()
        );
    }

    #[test]
    fn corrupted_bgp_feed_is_salvaged_with_issues_reported() {
        let mut cfg = tiny();
        cfg.hours = 48;
        cfg.wire_fidelity = false;
        cfg.apparatus = ApparatusFaults {
            corrupt_bgp_feed: true,
            bitflips: 24,
            truncate_prob: 1.0,
            ..ApparatusFaults::none()
        };
        let out = run_experiment(&cfg);
        assert!(out.report.mrt_issues > 0, "corruption must quarantine something");
        assert!(!out.report.mrt_issue_samples.is_empty());
        // The salvaged series still carries the bulk of BGP activity.
        let healthy = run_experiment(&{
            let mut c = cfg.clone();
            c.apparatus = ApparatusFaults::none();
            c
        });
        // The stress corruption truncates the tail third of the feed and
        // flips two dozen bits, so the back of the month is gone — but the
        // surviving prefix must still carry a substantial share of the
        // activity rather than collapse to nothing.
        let cells = out.dataset.bgp.active_cells().count();
        let healthy_cells = healthy.dataset.bgp.active_cells().count();
        assert!(
            cells * 3 >= healthy_cells,
            "salvage kept {cells} of {healthy_cells} active cells"
        );
    }

    #[test]
    fn failure_rates_roughly_ordered_by_category() {
        // Even at tiny scale, PL should fail more than DU.
        let mut cfg = tiny();
        cfg.hours = 48;
        cfg.wire_fidelity = false;
        let out = run_experiment(&cfg);
        let ds = &out.dataset;
        let rate = |cat: ClientCategory| {
            let mut total = 0usize;
            let mut failed = 0usize;
            for r in &ds.records {
                if ds.client(r.client).category == cat {
                    total += 1;
                    failed += usize::from(r.failed());
                }
            }
            failed as f64 / total.max(1) as f64
        };
        let pl = rate(ClientCategory::PlanetLab);
        let du = rate(ClientCategory::Dialup);
        assert!(pl > du, "PL {pl} vs DU {du}");
        assert!(pl > 0.01 && pl < 0.06, "PL rate {pl}");
    }
}
