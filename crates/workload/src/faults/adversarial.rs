//! Adversarial fault archetypes: modern failure modes the 2006 pipeline was
//! never tuned for, injected on top of the calibrated ground truth.
//!
//! Seven archetypes, each with a dedicated RNG stream (forked off the root
//! by a fresh string tag, so existing worlds stay bit-identical when an
//! archetype is off):
//!
//! * **BGP reconfiguration transients** — short-lived path violations for a
//!   client prefix during a scheduled reconfiguration window, mirrored by
//!   moderate route churn in the BGP feed (Chameleon, SIGCOMM'23).
//! * **Censorship-style path churn** — one client category × a small
//!   destination set blocked during windows whose onset coincides with
//!   injected churn on the destination prefixes ("A Churn for the Better").
//! * **Co-location blast radius** — shared-IP hosting groups of sites that
//!   fail together, totally, briefly.
//! * **Vantage-point disagreement** — site faults visible only from the
//!   direct-client vantage; the proxy path around them stays healthy.
//! * **CDN regional brownouts** — a CDN site browns out for the client
//!   groups of one region while the rest of the world sees it healthy.
//! * **MTU blackholes** — per-pair windows where connects succeed and
//!   transfers stall after the first packets.
//! * **Wrong-answer DNS** — a zone resolves to a decoy address that accepts
//!   nothing; resolution succeeds, the connect fails.

use crate::clients::FleetSpec;
use crate::sites::{ReplicaLayout, SiteSpec};
use dnswire::DomainName;
use model::{ClientCategory, SimDuration, SimTime};
use netsim::{SimRng, Timeline};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// Which adversarial archetypes to inject, and how hard.
///
/// Every field is an intensity: `0.0` disables the archetype entirely (no
/// RNG stream is even forked — the standard world is bit-identical), `1.0`
/// is the calibrated "adversarial month" level, and values in between scale
/// the number of injected windows.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdversarialProfile {
    /// BGP reconfiguration transients on client prefixes.
    pub bgp_transients: f64,
    /// Censorship-style blocking windows correlated with route churn.
    pub censorship: f64,
    /// Co-location blast-radius outages.
    pub colo_blast: f64,
    /// Vantage-point-disagreement site faults (direct clients only).
    pub vantage_split: f64,
    /// CDN regional brownouts.
    pub cdn_brownout: f64,
    /// Per-pair MTU blackhole windows.
    pub mtu_blackhole: f64,
    /// Wrong-answer DNS windows.
    pub wrong_dns: f64,
}

/// Stable archetype names, in `FaultSet` bit order.
pub const ARCHETYPE_NAMES: [&str; 7] = [
    "bgp-transient",
    "censored",
    "colo-blast",
    "vantage-split",
    "cdn-brownout",
    "mtu-blackhole",
    "wrong-dns",
];

impl AdversarialProfile {
    /// The default: no adversarial fault anywhere (the pre-existing worlds).
    pub fn none() -> AdversarialProfile {
        AdversarialProfile {
            bgp_transients: 0.0,
            censorship: 0.0,
            colo_blast: 0.0,
            vantage_split: 0.0,
            cdn_brownout: 0.0,
            mtu_blackhole: 0.0,
            wrong_dns: 0.0,
        }
    }

    /// Every archetype at calibrated intensity — the combined stress world.
    pub fn adversarial_month() -> AdversarialProfile {
        AdversarialProfile {
            bgp_transients: 1.0,
            censorship: 1.0,
            colo_blast: 1.0,
            vantage_split: 1.0,
            cdn_brownout: 1.0,
            mtu_blackhole: 1.0,
            wrong_dns: 1.0,
        }
    }

    /// Preset with exactly one archetype enabled, by its stable name
    /// (one of [`ARCHETYPE_NAMES`]). Panics on an unknown name.
    pub fn only(name: &str) -> AdversarialProfile {
        let mut p = AdversarialProfile::none();
        match name {
            "bgp-transient" => p.bgp_transients = 1.0,
            "censored" => p.censorship = 1.0,
            "colo-blast" => p.colo_blast = 1.0,
            "vantage-split" => p.vantage_split = 1.0,
            "cdn-brownout" => p.cdn_brownout = 1.0,
            "mtu-blackhole" => p.mtu_blackhole = 1.0,
            "wrong-dns" => p.wrong_dns = 1.0,
            other => panic!("unknown archetype {other:?}"),
        }
        p
    }

    /// Is every archetype disabled?
    pub fn is_none(&self) -> bool {
        *self == AdversarialProfile::none()
    }
}

/// A scheduled reconfiguration (or censorship-churn) window handed to the
/// BGP synthesizer: moderate flutter on one prefix — well below the severe
/// ≥70-neighbor storms, but visible in the update stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReconfigWindowSpec {
    /// Index into the experiment's prefix table.
    pub prefix_index: u32,
    pub hour: u32,
    /// Peers that flutter (moderate: far below the severe threshold).
    pub peers: u16,
    /// Withdraw/re-announce rounds per peer inside the window.
    pub bursts: u16,
}

/// The materialized adversarial ground truth. Empty containers mean the
/// archetype is off; every accessor in `view` no-ops on empty state.
#[derive(Clone, Debug)]
pub struct AdversarialTruth {
    /// Per-client transient path-violation timeline (empty vec when off).
    pub bgp_transient: Vec<Timeline<bool>>,
    /// Reconfiguration windows for the BGP feed (transients + censor churn).
    pub reconfig_windows: Vec<ReconfigWindowSpec>,
    /// Clients inside the censored category slice.
    pub censored_clients: HashSet<u16>,
    /// Destination sites of the censorship campaign.
    pub censored_sites: HashSet<u16>,
    /// When the censorship campaign is actively blocking.
    pub censor_window: Timeline<bool>,
    /// Site → co-location group, and the per-group blast timeline.
    pub colo_of_site: HashMap<u16, u32>,
    pub colo_blast: Vec<Timeline<bool>>,
    /// Per-site fault windows visible only from the direct-client vantage.
    pub vantage_split: HashMap<u16, Timeline<bool>>,
    /// Per-CDN-site: (client groups of the browning region, window).
    pub cdn_brownout: HashMap<u16, (HashSet<u16>, Timeline<bool>)>,
    /// Client → wan group, captured so views can answer region membership
    /// (filled only when the brownout archetype is on).
    pub group_of_client: Vec<Option<u16>>,
    /// Per-pair MTU blackhole windows.
    pub mtu_blackhole: HashMap<(u16, u16), Timeline<bool>>,
    /// Zone apex → (wrong-answer window, decoy address served).
    pub wrong_dns: HashMap<DomainName, (Timeline<bool>, Ipv4Addr)>,
    /// Every decoy address in use (connect-phase stamping).
    pub decoys: HashSet<Ipv4Addr>,
}

impl Default for AdversarialTruth {
    fn default() -> AdversarialTruth {
        AdversarialTruth {
            bgp_transient: Vec::new(),
            reconfig_windows: Vec::new(),
            censored_clients: HashSet::new(),
            censored_sites: HashSet::new(),
            censor_window: Timeline::constant(false),
            colo_of_site: HashMap::new(),
            colo_blast: Vec::new(),
            vantage_split: HashMap::new(),
            cdn_brownout: HashMap::new(),
            group_of_client: Vec::new(),
            mtu_blackhole: HashMap::new(),
            wrong_dns: HashMap::new(),
            decoys: HashSet::new(),
        }
    }
}

impl AdversarialTruth {
    /// Is the pair inside an active censorship window at `t`?
    pub fn censored(&self, client: u16, site: u16, t: SimTime) -> bool {
        !self.censored_sites.is_empty()
            && *self.censor_window.at(t)
            && self.censored_clients.contains(&client)
            && self.censored_sites.contains(&site)
    }

    /// Is the site inside a co-location blast at `t`?
    pub fn colo_blasted(&self, site: u16, t: SimTime) -> bool {
        self.colo_of_site
            .get(&site)
            .is_some_and(|&g| *self.colo_blast[g as usize].at(t))
    }

    /// Is the site faulted for the *direct* vantage at `t`?
    pub fn vantage_faulted(&self, site: u16, t: SimTime) -> bool {
        self.vantage_split.get(&site).is_some_and(|tl| *tl.at(t))
    }

    /// Is the site browning out for this client group at `t`?
    pub fn browning_out(&self, site: u16, group: Option<u16>, t: SimTime) -> bool {
        let Some(g) = group else { return false };
        self.cdn_brownout
            .get(&site)
            .is_some_and(|(region, tl)| region.contains(&g) && *tl.at(t))
    }

    /// As [`Self::browning_out`], looking the client's group up first.
    pub fn browning_out_for(&self, site: u16, client: usize, t: SimTime) -> bool {
        if self.cdn_brownout.is_empty() {
            return false;
        }
        let group = self.group_of_client.get(client).copied().flatten();
        self.browning_out(site, group, t)
    }

    /// Is the pair inside an MTU blackhole window at `t`?
    pub fn mtu_blackholed(&self, client: u16, site: u16, t: SimTime) -> bool {
        self.mtu_blackhole
            .get(&(client, site))
            .is_some_and(|tl| *tl.at(t))
    }

    /// Is the client's prefix inside a reconfiguration transient at `t`?
    pub fn bgp_transient_at(&self, client: usize, t: SimTime) -> bool {
        self.bgp_transient.get(client).is_some_and(|tl| *tl.at(t))
    }

    /// The decoy the zone serves at `t`, if a wrong-answer window is active.
    pub fn wrong_answer(&self, apex: &DomainName, t: SimTime) -> Option<Ipv4Addr> {
        let (tl, decoy) = self.wrong_dns.get(apex)?;
        (*tl.at(t)).then_some(*decoy)
    }
}

/// Collapse a bag of `[start, end)` intervals into a boolean timeline.
fn timeline_from_intervals(mut iv: Vec<(SimTime, SimTime)>) -> Timeline<bool> {
    if iv.is_empty() {
        return Timeline::constant(false);
    }
    iv.sort_unstable();
    let mut merged: Vec<(SimTime, SimTime)> = Vec::new();
    for (s, e) in iv {
        match merged.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => merged.push((s, e)),
        }
    }
    let mut changes = Vec::with_capacity(merged.len() * 2);
    for (s, e) in merged {
        changes.push((s, true));
        changes.push((e, false));
    }
    Timeline::from_changes(false, changes)
}

/// Materialize the adversarial truth. Every archetype draws only from its
/// own `fork_str` stream and only when enabled, so a disabled archetype
/// leaves the rest of the world untouched down to the bit.
pub(crate) fn materialize_adversarial(
    fleet: &FleetSpec,
    sites: &[SiteSpec],
    hours: u32,
    root: &SimRng,
    profile: &AdversarialProfile,
    blocked: &HashSet<(u16, u16)>,
) -> AdversarialTruth {
    let mut out = AdversarialTruth::default();
    let hour_of = |h: u64| SimTime::from_hours(h);

    // (a) BGP reconfiguration transients: a few maintenance windows per day,
    // each giving one client prefix 2–4 path-violation blips of 4–10 min.
    if profile.bgp_transients > 0.0 && fleet.group_count > 0 {
        let mut rng = root.fork_str("adv-bgp-transient");
        let windows = ((f64::from(hours) * profile.bgp_transients / 12.0).round() as u64).max(2);
        let mut group_iv: HashMap<u16, Vec<(SimTime, SimTime)>> = HashMap::new();
        for _ in 0..windows {
            let g = rng.below(u64::from(fleet.group_count)) as u16;
            let hour = rng.below(u64::from(hours)) as u32;
            let bursts = 2 + rng.below(3) as u16;
            let iv = group_iv.entry(g).or_default();
            for _ in 0..bursts {
                let start = hour_of(u64::from(hour)) + SimDuration::from_secs(rng.below(3000));
                iv.push((start, start + SimDuration::from_secs(240 + rng.below(360))));
            }
            out.reconfig_windows.push(ReconfigWindowSpec {
                prefix_index: u32::from(g),
                hour,
                peers: 8 + rng.below(12) as u16,
                bursts,
            });
        }
        out.bgp_transient = fleet
            .clients
            .iter()
            .map(|c| match c.wan_group.and_then(|g| group_iv.get(&g)) {
                Some(iv) => timeline_from_intervals(iv.clone()),
                None => Timeline::constant(false),
            })
            .collect();
    }

    // (b) Censorship-style path churn: PlanetLab clients in a third of the
    // groups lose 3 destination sites for multi-hour windows; each onset
    // hour fires moderate route churn on the destination prefixes.
    if profile.censorship > 0.0 && fleet.group_count > 0 && !sites.is_empty() {
        let mut rng = root.fork_str("adv-censor");
        let picks = rng.sample_indices(sites.len(), 3.min(sites.len()));
        out.censored_sites = picks.iter().map(|&s| s as u16).collect();
        let group_picks: HashSet<u16> = rng
            .sample_indices(
                fleet.group_count as usize,
                (fleet.group_count as usize / 3).max(1),
            )
            .into_iter()
            .map(|g| g as u16)
            .collect();
        out.censored_clients = fleet
            .clients
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.category == ClientCategory::PlanetLab
                    && c.wan_group.is_some_and(|g| group_picks.contains(&g))
            })
            .map(|(i, _)| i as u16)
            .collect();
        let server_prefix_base = u32::from(fleet.group_count);
        let n = ((f64::from(hours) * profile.censorship / 36.0).ceil() as u64).max(1);
        let mut iv = Vec::new();
        for _ in 0..n {
            let start_h = rng.below(u64::from(hours));
            let start = hour_of(start_h) + SimDuration::from_secs(rng.below(1800));
            iv.push((start, start + SimDuration::from_hours(2 + rng.below(5))));
            for &s in &picks {
                out.reconfig_windows.push(ReconfigWindowSpec {
                    prefix_index: server_prefix_base + s as u32,
                    hour: start_h as u32,
                    peers: 6 + rng.below(8) as u16,
                    bursts: 3,
                });
            }
        }
        out.censor_window = timeline_from_intervals(iv);
    }

    // (c) Co-location blast radius: two hosting groups of 4 sites each;
    // short total outages that take every member down at once.
    if profile.colo_blast > 0.0 && sites.len() >= 8 {
        let mut rng = root.fork_str("adv-colo");
        let mut order: Vec<usize> = (0..sites.len()).collect();
        rng.shuffle(&mut order);
        let mut members = order.into_iter();
        for gid in 0u32..2 {
            for s in (&mut members).take(4) {
                out.colo_of_site.insert(s as u16, gid);
            }
            let count = ((f64::from(hours) * profile.colo_blast / 24.0).ceil() as u64).max(1);
            let mut iv = Vec::new();
            for _ in 0..count {
                let start = hour_of(rng.below(u64::from(hours))) + SimDuration::from_secs(rng.below(3000));
                iv.push((start, start + SimDuration::from_secs(600 + rng.below(2400))));
            }
            out.colo_blast.push(timeline_from_intervals(iv));
        }
    }

    // (d) Vantage-point disagreement: site faults only direct clients see.
    if profile.vantage_split > 0.0 && !sites.is_empty() {
        let mut rng = root.fork_str("adv-vantage");
        for s in rng.sample_indices(sites.len(), 4.min(sites.len())) {
            let count = ((f64::from(hours) * profile.vantage_split / 12.0).ceil() as u64).max(1);
            let mut iv = Vec::new();
            for _ in 0..count {
                let start = hour_of(rng.below(u64::from(hours))) + SimDuration::from_secs(rng.below(1800));
                iv.push((start, start + SimDuration::from_secs(900 + rng.below(2700))));
            }
            out.vantage_split.insert(s as u16, timeline_from_intervals(iv));
        }
    }

    // (e) CDN regional brownouts: every CDN-layout site gets a region (a
    // third of the client groups) and brownout windows for that region only.
    if profile.cdn_brownout > 0.0 && fleet.group_count > 0 {
        let mut rng = root.fork_str("adv-cdn");
        out.group_of_client = fleet.clients.iter().map(|c| c.wan_group).collect();
        let cdn_sites: Vec<u16> = sites
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.layout, ReplicaLayout::Cdn { .. }))
            .map(|(i, _)| i as u16)
            .collect();
        for &s in &cdn_sites {
            let region: HashSet<u16> = rng
                .sample_indices(
                    fleet.group_count as usize,
                    (fleet.group_count as usize / 3).max(1),
                )
                .into_iter()
                .map(|g| g as u16)
                .collect();
            let count = ((f64::from(hours) * profile.cdn_brownout / 18.0).ceil() as u64).max(1);
            let mut iv = Vec::new();
            for _ in 0..count {
                let start = hour_of(rng.below(u64::from(hours))) + SimDuration::from_secs(rng.below(1800));
                iv.push((start, start + SimDuration::from_secs(1800 + rng.below(3600))));
            }
            out.cdn_brownout.insert(s, (region, timeline_from_intervals(iv)));
        }
    }

    // (f) MTU blackholes: a handful of direct (client, site) pairs whose
    // transfers stall inside multi-hour windows. Disjoint from the blocked
    // pairs so each pair-level mechanism stays attributable.
    if profile.mtu_blackhole > 0.0 && !sites.is_empty() && !fleet.is_empty() {
        let mut rng = root.fork_str("adv-mtu");
        let target = ((6.0 * profile.mtu_blackhole).round() as usize).max(1);
        let mut guard = 0;
        while out.mtu_blackhole.len() < target && guard < 200 {
            guard += 1;
            let c = rng.below(fleet.len() as u64) as u16;
            let s = rng.below(sites.len() as u64) as u16;
            if blocked.contains(&(c, s))
                || out.mtu_blackhole.contains_key(&(c, s))
                || fleet.clients[c as usize].proxy.is_some()
            {
                continue;
            }
            let count = ((f64::from(hours) / 24.0).ceil() as u64).max(2);
            let mut iv = Vec::new();
            for _ in 0..count {
                let start = hour_of(rng.below(u64::from(hours))) + SimDuration::from_secs(rng.below(1200));
                iv.push((
                    start,
                    start + SimDuration::from_hours(1) + SimDuration::from_secs(rng.below(7200)),
                ));
            }
            out.mtu_blackhole.insert((c, s), timeline_from_intervals(iv));
        }
    }

    // (g) Wrong-answer DNS: three zones intermittently resolve to a decoy
    // in TEST-NET-1 that accepts no connections.
    if profile.wrong_dns > 0.0 && !sites.is_empty() {
        let mut rng = root.fork_str("adv-wrong-dns");
        let picks = rng.sample_indices(sites.len(), 3.min(sites.len()));
        for (i, &s) in picks.iter().enumerate() {
            let Ok(host) = sites[s].hostname.parse::<DomainName>() else {
                continue;
            };
            let apex = dnssim::zones::registrable_domain(&host);
            let decoy = Ipv4Addr::new(192, 0, 2, 10 + i as u8);
            let count = ((f64::from(hours) * profile.wrong_dns / 12.0).ceil() as u64).max(1);
            let mut iv = Vec::new();
            for _ in 0..count {
                let start = hour_of(rng.below(u64::from(hours))) + SimDuration::from_secs(rng.below(2400));
                iv.push((start, start + SimDuration::from_secs(900 + rng.below(1800))));
            }
            out.decoys.insert(decoy);
            out.wrong_dns.insert(apex, (timeline_from_intervals(iv), decoy));
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clients::build_fleet;
    use crate::sites::build_sites;

    fn materialize(profile: &AdversarialProfile, hours: u32) -> AdversarialTruth {
        let fleet = build_fleet();
        let sites = build_sites();
        let root = SimRng::new(7);
        let blocked = HashSet::new();
        materialize_adversarial(&fleet, &sites, hours, &root, profile, &blocked)
    }

    #[test]
    fn disabled_profile_materializes_nothing() {
        let t = materialize(&AdversarialProfile::none(), 48);
        assert!(t.bgp_transient.is_empty());
        assert!(t.reconfig_windows.is_empty());
        assert!(t.censored_clients.is_empty() && t.censored_sites.is_empty());
        assert!(t.colo_blast.is_empty() && t.colo_of_site.is_empty());
        assert!(t.vantage_split.is_empty());
        assert!(t.cdn_brownout.is_empty());
        assert!(t.mtu_blackhole.is_empty());
        assert!(t.wrong_dns.is_empty() && t.decoys.is_empty());
    }

    #[test]
    fn adversarial_month_populates_every_archetype() {
        let t = materialize(&AdversarialProfile::adversarial_month(), 96);
        assert!(!t.bgp_transient.is_empty());
        assert!(!t.reconfig_windows.is_empty());
        assert!(!t.censored_clients.is_empty() && t.censored_sites.len() == 3);
        assert_eq!(t.colo_blast.len(), 2);
        assert_eq!(t.colo_of_site.len(), 8);
        assert_eq!(t.vantage_split.len(), 4);
        assert!(!t.cdn_brownout.is_empty(), "the fleet has CDN sites");
        assert!(!t.mtu_blackhole.is_empty());
        assert_eq!(t.wrong_dns.len(), 3);
        // MTU pairs avoid proxied clients — the proxy hides the path.
        let fleet = build_fleet();
        for (c, _) in t.mtu_blackhole.keys() {
            assert!(fleet.clients[*c as usize].proxy.is_none());
        }
    }

    #[test]
    fn single_archetype_presets_are_isolated() {
        for name in ARCHETYPE_NAMES {
            let p = AdversarialProfile::only(name);
            assert!(!p.is_none());
            let t = materialize(&p, 48);
            assert_eq!(t.vantage_split.is_empty(), name != "vantage-split");
            assert_eq!(t.mtu_blackhole.is_empty(), name != "mtu-blackhole");
            assert_eq!(t.wrong_dns.is_empty(), name != "wrong-dns");
        }
    }

    #[test]
    fn materialization_is_deterministic() {
        let a = materialize(&AdversarialProfile::adversarial_month(), 48);
        let b = materialize(&AdversarialProfile::adversarial_month(), 48);
        assert_eq!(a.reconfig_windows, b.reconfig_windows);
        assert_eq!(a.censored_clients, b.censored_clients);
        assert_eq!(
            a.mtu_blackhole.keys().collect::<HashSet<_>>(),
            b.mtu_blackhole.keys().collect::<HashSet<_>>()
        );
    }

    #[test]
    fn interval_merge_handles_overlaps() {
        let s = SimTime::from_secs;
        let tl = timeline_from_intervals(vec![(s(10), s(20)), (s(15), s(30)), (s(40), s(50))]);
        assert!(!*tl.at(s(5)));
        assert!(*tl.at(s(12)) && *tl.at(s(25)));
        assert!(!*tl.at(s(35)));
        assert!(*tl.at(s(45)));
        assert!(!*tl.at(s(55)));
    }
}
