//! The ground-truth fault model.
//!
//! Every mechanism the paper hypothesizes behind its observations exists
//! here as an explicit stochastic process, materialized into deterministic
//! timelines once per experiment:
//!
//! * **Last-mile / LDNS outages** (per client, plus a component shared by
//!   co-located clients): the client cannot reach its LDNS → *LDNS timeout*
//!   DNS failures — the paper's dominant DNS failure cause, and the reason
//!   client connectivity problems hide in the DNS category rather than the
//!   TCP one (Section 4.4.4).
//! * **Wide-area (WAN) outages** (per client, shared at the site uplink):
//!   the campus prefix is unreachable — cached names still resolve, so these
//!   surface as TCP no-connection failures; they drive the client-side
//!   episodes of the correlation analysis and couple to severe BGP events.
//! * **Server degradation episodes** (per replica group): heavy-tailed
//!   episodes during which a fraction of accesses fail (down/refusing/
//!   unresponsive/stalling) — "abnormally high failure rate", not blackout.
//! * **Authoritative-DNS faults** per zone: unreachable servers (non-LDNS
//!   timeouts) and broken configurations (SERVFAIL/NXDOMAIN bursts on
//!   brazzil/espn).
//! * **38 near-permanently blocked client–site pairs** (Section 4.4.2).
//! * **Transient background noise** per connection — the "other" category.
//!
//! Distinct from all of the above is the **apparatus fault model**
//! ([`ApparatusFaults`], re-exported from [`crate::apparatus`]): failures
//! of the measurement platform itself (node crashes, lost records,
//! corrupted trace files). Ground-truth faults are what the analysis
//! *infers*; apparatus faults are what it must *survive*.

use crate::clients::{ClientProfile, FleetSpec};
use crate::sites::{site_addresses, ReplicaLayout, SiteSpec};
use dnswire::DomainName;
use httpsim::Origin;
use model::{ClientCategory, DnsErrorCode, SimDuration, SimTime};
use netsim::process::EpisodeDuration;
use netsim::{OnOffProcess, SimRng, Timeline};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

pub mod adversarial;
mod profile;

// The *apparatus* fault model — failures of the measurement platform
// itself, as opposed to the network faults modelled below — lives in
// [`crate::apparatus`] and is re-exported here so both fault families are
// reachable from one module path.
pub use crate::apparatus::{ApparatusFaults, CorruptionApplied};
pub use adversarial::{AdversarialProfile, AdversarialTruth, ReconfigWindowSpec, ARCHETYPE_NAMES};
pub use profile::FaultProfile;

/// One severe BGP instability event to synthesize (consumed by `bgpsim`).
#[derive(Clone, Copy, Debug)]
pub struct SevereBgpEvent {
    /// Index into the experiment's prefix table.
    pub prefix_index: u32,
    pub hour: u32,
    pub neighbors: u16,
    pub withdrawals_per_neighbor: u16,
}

/// The materialized ground truth for one experiment.
pub struct GroundTruth {
    pub horizon: SimTime,
    pub hours: u32,
    /// Per-client combined last-mile/LDNS-path outage timeline (own ∪ shared).
    pub link: Vec<Timeline<bool>>,
    /// Per-client LDNS-server outage timeline.
    pub ldns: Vec<Timeline<bool>>,
    /// Per-client wide-area outage timeline (own ∪ shared).
    pub wan: Vec<Timeline<bool>>,
    /// Per-client machine-off timeline.
    pub down: Vec<Timeline<bool>>,
    /// Per-client fault profile (noise, loss, RTT).
    pub profile: Vec<FaultProfile>,
    /// Degradation timeline per replica-fault-group, and which group each
    /// replica address belongs to.
    pub replica_group_fault: Vec<Timeline<bool>>,
    pub replica_group_of: HashMap<Ipv4Addr, u32>,
    /// Hard-down flap timeline per spread-site replica (full outage while
    /// active; Section 4.7's proxy-victim mechanism).
    pub replica_hard_down: HashMap<Ipv4Addr, Timeline<bool>>,
    /// Failure probability per site while degraded.
    pub site_fail_prob: Vec<f64>,
    /// Index object size per site (used to size mid-transfer stalls).
    pub site_index_bytes: Vec<u64>,
    /// Site index per replica address.
    pub site_of_addr: HashMap<Ipv4Addr, u16>,
    /// Authoritative-DNS outage timeline per zone apex.
    pub zone_auth_down: HashMap<DomainName, Timeline<bool>>,
    /// Broken-zone (error-response) timeline per zone apex.
    pub zone_error: HashMap<DomainName, (Timeline<bool>, DnsErrorCode)>,
    /// Near-permanently blocked (client, site) pairs.
    pub blocked: HashSet<(u16, u16)>,
    /// Transiently degraded (client, site) pairs → per-access failure
    /// probability (Section 2.2's client-server-specific category: e.g. a
    /// broken peering or MTU blackhole between one campus and one site,
    /// too weak to register on either endpoint's aggregate).
    pub degraded_pairs: HashMap<(u16, u16), f64>,
    /// Per-proxy vantage outage timelines.
    pub proxy_link: Vec<Timeline<bool>>,
    pub proxy_ldns: Vec<Timeline<bool>>,
    /// HTTP origin behaviour per hostname.
    pub origins: HashMap<String, Origin>,
    /// RTT penalty per site (ms).
    pub site_rtt_penalty: Vec<u32>,
    /// Severe BGP events derived from (and coupled to) the outages above.
    pub severe_bgp: Vec<SevereBgpEvent>,
    /// Adversarial archetype truth (all containers empty unless an
    /// [`AdversarialProfile`] explicitly enabled an archetype).
    pub adversarial: AdversarialTruth,
    /// Root seed (used for the stateless per-access noise hashing).
    pub seed: u64,
}

/// Convert a target long-run down fraction + mean episode length into an
/// on/off process.
fn process_for(down_frac: f64, episode: SimDuration) -> OnOffProcess {
    if down_frac <= 0.0 {
        return OnOffProcess::never();
    }
    let mean_down = episode.as_micros() as f64;
    let mean_up = mean_down * (1.0 - down_frac) / down_frac;
    OnOffProcess::new(
        SimDuration::from_micros(mean_up as u64),
        EpisodeDuration::Exp { mean: episode },
    )
}

/// Union of two boolean timelines (true where either is true).
fn union(a: &Timeline<bool>, b: &Timeline<bool>) -> Timeline<bool> {
    let mut points: Vec<SimTime> = Vec::new();
    for (start, _, _) in a.segments() {
        points.push(start);
    }
    for (start, _, _) in b.segments() {
        points.push(start);
    }
    points.sort_unstable();
    points.dedup();
    let changes: Vec<(SimTime, bool)> = points
        .into_iter()
        .map(|t| (t, *a.at(t) || *b.at(t)))
        .collect();
    let initial = changes
        .first()
        .map(|(t, s)| if t.as_micros() == 0 { *s } else { false })
        .unwrap_or(false);
    Timeline::from_changes(initial, changes)
}

impl GroundTruth {
    /// Materialize the world for `fleet` × `sites` over `hours` hours.
    pub fn materialize(fleet: &FleetSpec, sites: &[SiteSpec], hours: u32, seed: u64) -> GroundTruth {
        Self::materialize_scaled(fleet, sites, hours, seed, 1.0)
    }

    /// As [`GroundTruth::materialize`], with every fault intensity (client
    /// link/LDNS/WAN outage fractions, server degradation and flap
    /// fractions, DNS-infrastructure faults, transient noise) multiplied by
    /// `fault_scale`. `1.0` is the calibrated 2005 Internet; `0.0` is a
    /// fault-free world (only background packet loss remains); `2.0` is an
    /// Internet twice as broken. Blocked pairs are kept regardless — they
    /// are configuration, not weather.
    pub fn materialize_scaled(
        fleet: &FleetSpec,
        sites: &[SiteSpec],
        hours: u32,
        seed: u64,
        fault_scale: f64,
    ) -> GroundTruth {
        Self::materialize_with(fleet, sites, hours, seed, fault_scale, &AdversarialProfile::none())
    }

    /// As [`GroundTruth::materialize_scaled`], additionally injecting the
    /// adversarial archetypes selected by `adversarial`. Archetypes draw
    /// exclusively from their own freshly-tagged RNG streams, so any world
    /// with `AdversarialProfile::none()` is bit-identical to one built by
    /// the plain constructors.
    pub fn materialize_with(
        fleet: &FleetSpec,
        sites: &[SiteSpec],
        hours: u32,
        seed: u64,
        fault_scale: f64,
        adversarial: &AdversarialProfile,
    ) -> GroundTruth {
        let k = fault_scale.max(0.0);
        let horizon = SimTime::from_hours(u64::from(hours));
        let root = SimRng::new(seed);

        // --- Shared (group-level) processes --------------------------------
        // Keyed by wan_group; intensities come from the *max* profile among
        // members (the Intel/Columbia subgroup values are defined there).
        let mut shared_link: HashMap<u16, Timeline<bool>> = HashMap::new();
        let mut shared_wan: HashMap<u16, Timeline<bool>> = HashMap::new();
        for c in &fleet.clients {
            let Some(g) = c.wan_group else { continue };
            let p = FaultProfile::for_profile(c.profile);
            // Columbia-quiet must not join the noisy subgroup process: its
            // own shared_* values are tiny, and since every member writes
            // its own key only once (first wins), order in the fleet matters;
            // we take the max intensity member instead.
            let link_entry = shared_link.entry(g);
            if let std::collections::hash_map::Entry::Vacant(e) = link_entry {
                let mut rng = root.fork(0x11_0000 + u64::from(g));
                e.insert(
                    process_for(
                        k * shared_intensity(fleet, g, |p| p.shared_link_down),
                        p.link_episode,
                    )
                    .materialize(&mut rng, horizon),
                );
            }
            if let std::collections::hash_map::Entry::Vacant(e) = shared_wan.entry(g) {
                let mut rng = root.fork(0x12_0000 + u64::from(g));
                e.insert(
                    process_for(
                        k * shared_intensity(fleet, g, |p| p.shared_wan_down),
                        p.wan_episode,
                    )
                    .materialize(&mut rng, horizon),
                );
            }
        }

        // --- Per-client timelines -------------------------------------------
        let mut link = Vec::with_capacity(fleet.len());
        let mut ldns = Vec::with_capacity(fleet.len());
        let mut wan = Vec::with_capacity(fleet.len());
        let mut down = Vec::with_capacity(fleet.len());
        let mut profile = Vec::with_capacity(fleet.len());
        for (i, c) in fleet.clients.iter().enumerate() {
            let mut p = FaultProfile::for_profile(c.profile);
            p.noise_prob *= k;
            let mut rng = root.fork(0x20_0000 + i as u64);
            let own_link =
                process_for(k * p.own_link_down, p.link_episode).materialize(&mut rng, horizon);
            let own_wan =
                process_for(k * p.own_wan_down, p.wan_episode).materialize(&mut rng, horizon);
            let ldns_tl = process_for(k * p.ldns_down, p.link_episode).materialize(&mut rng, horizon);
            let down_tl = process_for(p.machine_down, SimDuration::from_hours(5))
                .materialize(&mut rng, horizon);
            let (l, w) = match c.wan_group {
                Some(g) if subscribes_shared(c.profile) => (
                    union(&own_link, &shared_link[&g]),
                    union(&own_wan, &shared_wan[&g]),
                ),
                _ => (own_link, own_wan),
            };
            link.push(l);
            wan.push(w);
            ldns.push(ldns_tl);
            down.push(down_tl);
            profile.push(p);
        }

        // --- Server-side processes -------------------------------------------
        let mut replica_group_fault: Vec<Timeline<bool>> = Vec::new();
        let mut replica_group_of: HashMap<Ipv4Addr, u32> = HashMap::new();
        let mut replica_hard_down: HashMap<Ipv4Addr, Timeline<bool>> = HashMap::new();
        let mut site_of_addr: HashMap<Ipv4Addr, u16> = HashMap::new();
        let mut site_fail_prob = Vec::with_capacity(sites.len());
        let mut site_index_bytes = Vec::with_capacity(sites.len());
        let mut site_rtt_penalty = Vec::with_capacity(sites.len());
        let episode_dist = EpisodeDuration::BoundedPareto {
            min: SimDuration::from_secs(45 * 60),
            alpha: 1.25,
            cap: SimDuration::from_hours(450),
        };
        for (si, s) in sites.iter().enumerate() {
            site_fail_prob.push(s.reliability.episode_fail_prob);
            site_index_bytes.push(s.index_bytes);
            site_rtt_penalty.push(s.rtt_penalty_ms);
            let addrs = site_addresses(si, s.layout);
            for a in &addrs {
                site_of_addr.insert(*a, si as u16);
            }
            let mk = |down_frac: f64, stream: u64, boost: f64| -> Timeline<bool> {
                let mut rng = root.fork(0x30_0000 + stream);
                let frac = (down_frac * boost * k).min(0.97);
                if frac <= 0.0 {
                    return Timeline::constant(false);
                }
                let mean_down = episode_dist.mean_micros();
                let mean_up = mean_down * (1.0 - frac) / frac;
                OnOffProcess::new(SimDuration::from_micros(mean_up as u64), episode_dist)
                    .materialize(&mut rng, horizon)
            };
            match s.layout {
                ReplicaLayout::Single
                | ReplicaLayout::MultiSameSubnet { .. }
                | ReplicaLayout::Cdn { .. } => {
                    // One fault group: all addresses degrade together
                    // (same subnet / same origin behind the CDN).
                    let gid = replica_group_fault.len() as u32;
                    replica_group_fault.push(mk(s.reliability.down_fraction, si as u64 * 8, 1.0));
                    for a in &addrs {
                        replica_group_of.insert(*a, gid);
                    }
                }
                ReplicaLayout::MultiSpread { .. } => {
                    // Independent short hard-down flaps per replica; the
                    // first address is the flakiest. No shared degradation
                    // group: a spread site's trouble is always partial.
                    for (ri, a) in addrs.iter().enumerate() {
                        let frac = k * if ri == 0 {
                            s.reliability.replica_flap_fraction
                        } else {
                            s.reliability.replica_flap_fraction * 0.5
                        };
                        let mut rng = root.fork(0x31_0000 + si as u64 * 8 + ri as u64);
                        let tl = process_for(frac, SimDuration::from_secs(8 * 60))
                            .materialize(&mut rng, horizon);
                        replica_hard_down.insert(*a, tl);
                    }
                }
            }
        }

        // --- DNS-infrastructure faults ---------------------------------------
        let mut zone_auth_down = HashMap::new();
        let mut zone_error = HashMap::new();
        for (si, s) in sites.iter().enumerate() {
            let host: DomainName = s.hostname.parse().expect("valid hostname");
            let apex = dnssim::zones::registrable_domain(&host);
            if s.reliability.auth_dns_down_fraction > 0.0 {
                let mut rng = root.fork(0x40_0000 + si as u64);
                let tl = process_for(
                    k * s.reliability.auth_dns_down_fraction,
                    SimDuration::from_secs(40 * 60),
                )
                .materialize(&mut rng, horizon);
                // Zones can be shared (e.g. yahoo.com) — union if present.
                zone_auth_down
                    .entry(apex.clone())
                    .and_modify(|existing: &mut Timeline<bool>| *existing = union(existing, &tl))
                    .or_insert(tl);
            }
            if s.reliability.zone_error_fraction > 0.0 {
                let mut rng = root.fork(0x41_0000 + si as u64);
                let tl = process_for(
                    k * s.reliability.zone_error_fraction,
                    SimDuration::from_secs(90 * 60),
                )
                .materialize(&mut rng, horizon);
                let code = if si % 2 == 0 {
                    DnsErrorCode::ServFail
                } else {
                    DnsErrorCode::NxDomain
                };
                zone_error.insert(apex, (tl, code));
            }
        }

        // --- Blocked pairs -----------------------------------------------------
        let blocked = pick_blocked_pairs(fleet, sites, &root);

        // --- Transiently degraded pairs ------------------------------------------
        // A few client-site paths with persistent partial trouble (like the
        // paper's northwestern↔mp3.com TCP-checksum case before it went
        // permanent). Chosen disjoint from the blocked pairs.
        let mut degraded_pairs = HashMap::new();
        {
            let mut rng = root.fork_str("degraded-pairs");
            let pl: Vec<u16> = fleet
                .clients
                .iter()
                .enumerate()
                .filter(|(_, c)| c.category == ClientCategory::PlanetLab)
                .map(|(i, _)| i as u16)
                .collect();
            let mut guard = 0;
            while degraded_pairs.len() < 4 && guard < 100 {
                guard += 1;
                let c = pl[rng.below(pl.len() as u64) as usize];
                let s2 = rng.below(sites.len() as u64) as u16;
                if blocked.contains(&(c, s2)) || degraded_pairs.contains_key(&(c, s2)) {
                    continue;
                }
                degraded_pairs.insert((c, s2), 0.20 + rng.f64() * 0.15);
            }
        }

        // --- Proxies ------------------------------------------------------------
        let mut proxy_link = Vec::new();
        let mut proxy_ldns = Vec::new();
        for pi in 0..fleet.proxy_count {
            let mut rng = root.fork(0x50_0000 + u64::from(pi));
            proxy_link.push(
                process_for(0.0004, SimDuration::from_secs(10 * 60)).materialize(&mut rng, horizon),
            );
            proxy_ldns.push(
                process_for(0.0005, SimDuration::from_secs(10 * 60)).materialize(&mut rng, horizon),
            );
        }

        // --- Origins --------------------------------------------------------------
        let mut origins = HashMap::new();
        for s in sites {
            let origin = if s.redirect_hop {
                let canonical = canonical_host(s.hostname);
                Origin::simple(&canonical, s.index_bytes)
                    .with_redirects(vec![s.hostname.to_string()])
                    .with_error_rate(0.0002, 503)
            } else {
                Origin::simple(s.hostname, s.index_bytes).with_error_rate(0.0002, 503)
            };
            origins.insert(s.hostname.to_string(), origin.clone());
            if s.redirect_hop {
                origins.insert(canonical_host(s.hostname), origin);
            }
        }

        let mut gt = GroundTruth {
            horizon,
            hours,
            link,
            ldns,
            wan,
            down,
            profile,
            replica_group_fault,
            replica_group_of,
            replica_hard_down,
            site_fail_prob,
            site_index_bytes,
            site_of_addr,
            zone_auth_down,
            zone_error,
            blocked,
            degraded_pairs,
            proxy_link,
            proxy_ldns,
            origins,
            site_rtt_penalty,
            severe_bgp: Vec::new(),
            adversarial: AdversarialTruth::default(),
            seed,
        };
        gt.severe_bgp = derive_severe_events(&gt, fleet, sites, &root);
        gt.adversarial = adversarial::materialize_adversarial(
            fleet,
            sites,
            hours,
            &root,
            adversarial,
            &gt.blocked,
        );
        gt
    }

    /// Is the client's machine off at `t` (makes no accesses)?
    pub fn machine_down(&self, client: usize, t: SimTime) -> bool {
        *self.down[client].at(t)
    }

    /// Export the attribution audit's answer key: the injected blocked
    /// pairs, per-entity *fault hours* (hours mostly covered by a structural
    /// fault, the hour-granularity view the episode inferences work at), and
    /// the severe-BGP event list.
    ///
    /// Derived entirely from the materialized timelines — no randomness, so
    /// the sidecar is identical across runs of the same seed.
    pub fn truth_sidecar(&self, sites: &[SiteSpec]) -> model::TruthSidecar {
        let clients = self.link.len();
        let mut client_fault_hours = Vec::with_capacity(clients);
        for c in 0..clients {
            let mut hours = covered_hours(&self.link[c], self.hours, 0.5);
            hours.extend(covered_hours(&self.ldns[c], self.hours, 0.5));
            hours.extend(covered_hours(&self.wan[c], self.hours, 0.5));
            hours.sort_unstable();
            hours.dedup();
            client_fault_hours.push(hours);
        }

        // Per site: degradation episodes of its replica groups, hard replica
        // outages, and authoritative-DNS faults of its zone.
        let mut site_groups: Vec<HashSet<u32>> = vec![HashSet::new(); sites.len()];
        let mut site_addrs: Vec<Vec<Ipv4Addr>> = vec![Vec::new(); sites.len()];
        for (addr, &si) in &self.site_of_addr {
            if let Some(&gid) = self.replica_group_of.get(addr) {
                site_groups[si as usize].insert(gid);
            }
            site_addrs[si as usize].push(*addr);
        }
        let mut site_fault_hours = Vec::with_capacity(sites.len());
        for (si, spec) in sites.iter().enumerate() {
            let mut hours: Vec<u32> = Vec::new();
            for &gid in &site_groups[si] {
                hours.extend(covered_hours(
                    &self.replica_group_fault[gid as usize],
                    self.hours,
                    0.5,
                ));
            }
            for addr in &site_addrs[si] {
                if let Some(tl) = self.replica_hard_down.get(addr) {
                    hours.extend(covered_hours(tl, self.hours, 0.5));
                }
            }
            if let Ok(host) = spec.hostname.parse::<DomainName>() {
                let apex = dnssim::zones::registrable_domain(&host);
                if let Some(tl) = self.zone_auth_down.get(&apex) {
                    hours.extend(covered_hours(tl, self.hours, 0.5));
                }
                if let Some((tl, _)) = self.zone_error.get(&apex) {
                    hours.extend(covered_hours(tl, self.hours, 0.5));
                }
            }
            hours.sort_unstable();
            hours.dedup();
            site_fault_hours.push(hours);
        }

        let mut blocked_pairs: Vec<(u16, u16)> = self.blocked.iter().copied().collect();
        blocked_pairs.sort_unstable();

        model::TruthSidecar {
            hours: self.hours,
            blocked_pairs,
            client_fault_hours,
            site_fault_hours,
            severe_bgp: self
                .severe_bgp
                .iter()
                .map(|e| (e.prefix_index, e.hour))
                .collect(),
        }
    }
}

/// The canonical content host behind a redirecting listed hostname.
pub fn canonical_host(hostname: &str) -> String {
    match hostname.strip_prefix("www.") {
        Some(rest) => format!("content.{rest}"),
        None => format!("content.{hostname}"),
    }
}

/// Highest shared intensity among a group's members.
fn shared_intensity(fleet: &FleetSpec, group: u16, f: impl Fn(&FaultProfile) -> f64) -> f64 {
    fleet
        .clients
        .iter()
        .filter(|c| c.wan_group == Some(group) && subscribes_shared(c.profile))
        .map(|c| f(&FaultProfile::for_profile(c.profile)))
        .fold(0.0, f64::max)
}

/// Whether a profile subscribes to its group's shared processes (the
/// Columbia-quiet node deliberately does not share the noisy pair's faults).
fn subscribes_shared(p: ClientProfile) -> bool {
    !matches!(p, ClientProfile::PlColumbiaQuiet)
}

/// The 38 near-permanently blocked pairs: 10 to msn.com.tw, 9 to
/// sina.com.cn, 8 to sohu.com, 1 northwestern-like pair to mp3.com, and 10
/// more spread over intl sites — all PL clients (Section 4.4.2).
fn pick_blocked_pairs(
    fleet: &FleetSpec,
    sites: &[SiteSpec],
    root: &SimRng,
) -> HashSet<(u16, u16)> {
    let mut rng = root.fork_str("blocked-pairs");
    let pl: Vec<u16> = fleet
        .clients
        .iter()
        .enumerate()
        .filter(|(_, c)| c.category == ClientCategory::PlanetLab)
        .map(|(i, _)| i as u16)
        .collect();
    let site_idx = |host: &str| -> Option<u16> {
        sites
            .iter()
            .position(|s| s.hostname == host)
            .map(|i| i as u16)
    };
    let mut blocked = HashSet::new();
    let add_for = |host: &str, n: usize, rng: &mut SimRng, blocked: &mut HashSet<(u16, u16)>| {
        let Some(si) = site_idx(host) else { return };
        let picks = rng.sample_indices(pl.len(), n.min(pl.len()));
        for p in picks {
            blocked.insert((pl[p], si));
        }
    };
    add_for("www.msn.com.tw", 10, &mut rng, &mut blocked);
    add_for("www.sina.com.cn", 9, &mut rng, &mut blocked);
    add_for("www.sohu.com", 8, &mut rng, &mut blocked);
    add_for("www.mp3.com", 1, &mut rng, &mut blocked);
    // 10 more across intl sites until we reach 38 distinct pairs.
    let extra_sites = [
        "www.chinabroadcast.cn",
        "sina.com.hk",
        "www.alibaba.com",
        "english.pravda.ru",
        "www.rediff.com",
    ];
    let mut guard = 0;
    while blocked.len() < 38 && guard < 1000 {
        guard += 1;
        let host = extra_sites[rng.below(extra_sites.len() as u64) as usize];
        if let Some(si) = site_idx(host) {
            let c = pl[rng.below(pl.len() as u64) as usize];
            blocked.insert((c, si));
        }
    }
    blocked
}

/// Derive the severe-BGP-event list, coupled to materialized outages.
///
/// Prefix-table convention (must match `experiment::build_prefixes`):
/// prefix index = wan_group for client /24s; server prefixes follow.
fn derive_severe_events(
    gt: &GroundTruth,
    fleet: &FleetSpec,
    sites: &[SiteSpec],
    root: &SimRng,
) -> Vec<SevereBgpEvent> {
    let mut rng = root.fork_str("severe-bgp");
    let mut events: Vec<SevereBgpEvent> = Vec::new();
    let mut used: HashSet<(u32, u32)> = HashSet::new();

    // 1. Showcase clients: every WAN episode hour gets an event.
    for (i, c) in fleet.clients.iter().enumerate() {
        let is_howard = c.profile == ClientProfile::PlBgpShowcase;
        let is_kscy = c.profile == ClientProfile::PlKscyShowcase;
        if !is_howard && !is_kscy {
            continue;
        }
        let Some(g) = c.wan_group else { continue };
        for h in covered_hours(&gt.wan[i], gt.hours, 0.5) {
            if used.insert((u32::from(g), h)) {
                events.push(SevereBgpEvent {
                    prefix_index: u32::from(g),
                    hour: h,
                    neighbors: if is_howard { 71 } else { 2 },
                    withdrawals_per_neighbor: if is_howard { 3 } else { 45 },
                });
            }
        }
    }

    // 2. Server-coupled events: sample degraded hours of the big sites.
    // Server prefix indices follow the client groups in the prefix table.
    let server_prefix_base = u32::from(fleet.group_count);
    let target_total = (111 * gt.hours as usize / 744).max(4);
    let mut site_order: Vec<usize> = (0..sites.len()).collect();
    rng.shuffle(&mut site_order);
    'outer: for &si in site_order.iter().cycle().take(sites.len() * 4) {
        if events.len() >= target_total * 85 / 100 {
            break 'outer;
        }
        let Some(addr) = site_addresses(si, sites[si].layout).first().copied() else {
            continue;
        };
        let Some(&gid) = gt.replica_group_of.get(&addr) else {
            continue;
        };
        let tl = &gt.replica_group_fault[gid as usize];
        // Find an hour mostly covered by a degradation episode.
        for h in covered_hours(tl, gt.hours, 0.6) {
            let pfx = server_prefix_base + si as u32;
            if used.insert((pfx, h)) {
                events.push(SevereBgpEvent {
                    prefix_index: pfx,
                    hour: h,
                    neighbors: 70 + rng.below(3) as u16,
                    withdrawals_per_neighbor: 2 + rng.below(3) as u16,
                });
                continue 'outer;
            }
        }
    }

    // 3. Uncoupled events (~15%): severe withdrawal storms with no
    // end-to-end impact (the <20% of Fig 6 with low failure rates).
    let total_prefixes = server_prefix_base as u64 + sites.len() as u64;
    while events.len() < target_total {
        let pfx = rng.below(total_prefixes) as u32;
        let h = rng.below(u64::from(gt.hours)) as u32;
        if used.insert((pfx, h)) {
            events.push(SevereBgpEvent {
                prefix_index: pfx,
                hour: h,
                neighbors: 70 + rng.below(3) as u16,
                withdrawals_per_neighbor: 2,
            });
        }
    }
    events
}

/// Hours in `[0, hours)` where `tl` is true for at least `min_coverage` of
/// the hour.
fn covered_hours(tl: &Timeline<bool>, hours: u32, min_coverage: f64) -> Vec<u32> {
    let mut out = Vec::new();
    let hour_us = SimDuration::from_hours(1).as_micros() as f64;
    for h in 0..hours {
        let start = SimTime::from_hours(u64::from(h));
        let end = SimTime::from_hours(u64::from(h) + 1);
        let down = tl.micros_matching(start, end, |s| *s) as f64;
        if down >= min_coverage * hour_us {
            out.push(h);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clients::build_fleet;
    use crate::sites::build_sites;

    fn small_truth(hours: u32) -> (FleetSpec, Vec<SiteSpec>, GroundTruth) {
        let fleet = build_fleet();
        let sites = build_sites();
        let gt = GroundTruth::materialize(&fleet, &sites, hours, 7);
        (fleet, sites, gt)
    }

    #[test]
    fn timelines_cover_every_client() {
        let (fleet, _, gt) = small_truth(48);
        assert_eq!(gt.link.len(), fleet.len());
        assert_eq!(gt.ldns.len(), fleet.len());
        assert_eq!(gt.wan.len(), fleet.len());
        assert_eq!(gt.down.len(), fleet.len());
        assert_eq!(gt.profile.len(), fleet.len());
        assert_eq!(gt.proxy_link.len(), 5);
    }

    #[test]
    fn blocked_pairs_are_38_pl_pairs() {
        let (fleet, _, gt) = small_truth(24);
        assert_eq!(gt.blocked.len(), 38);
        for (c, _) in &gt.blocked {
            assert_eq!(
                fleet.clients[*c as usize].category,
                ClientCategory::PlanetLab
            );
        }
    }

    #[test]
    fn colocated_clients_share_shared_faults() {
        let (fleet, _, gt) = small_truth(744);
        // The Intel pair shares its WAN timeline segments.
        let intel: Vec<usize> = fleet
            .clients
            .iter()
            .enumerate()
            .filter(|(_, c)| c.profile == ClientProfile::PlIntelShared)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(intel.len(), 2);
        let a = &gt.wan[intel[0]];
        let b = &gt.wan[intel[1]];
        // Shared component dominates: overlapping downtime is large.
        let both = |t: SimTime| *a.at(t) && *b.at(t);
        let mut shared_hours = 0;
        let mut either_hours = 0;
        for h in 0..744u64 {
            let t = SimTime::from_hours(h) + SimDuration::from_secs(1800);
            if both(t) {
                shared_hours += 1;
            }
            if *a.at(t) || *b.at(t) {
                either_hours += 1;
            }
        }
        assert!(either_hours > 20, "Intel site has plenty of trouble");
        assert!(
            shared_hours * 100 >= either_hours * 85,
            "Intel faults are shared: {shared_hours}/{either_hours}"
        );
    }

    #[test]
    fn columbia_quiet_node_sees_little() {
        let (fleet, _, gt) = small_truth(744);
        let idx = |profile: ClientProfile| -> Vec<usize> {
            fleet
                .clients
                .iter()
                .enumerate()
                .filter(|(_, c)| c.profile == profile)
                .map(|(i, _)| i)
                .collect()
        };
        let noisy = idx(ClientProfile::PlColumbiaNoisy);
        let quiet = idx(ClientProfile::PlColumbiaQuiet);
        let downtime = |i: usize| {
            gt.wan[i].micros_matching(SimTime::ZERO, gt.horizon, |s| *s) as f64
                / gt.horizon.as_micros() as f64
        };
        assert!(downtime(noisy[0]) > 5.0 * downtime(quiet[0]));
    }

    #[test]
    fn heavy_sites_are_degraded_much_of_the_time() {
        let (_, sites, gt) = small_truth(744);
        let frac = |host: &str| {
            let si = sites.iter().position(|s| s.hostname == host).unwrap();
            let addr = site_addresses(si, sites[si].layout)[0];
            let gid = gt.replica_group_of[&addr];
            gt.replica_group_fault[gid as usize]
                .micros_matching(SimTime::ZERO, gt.horizon, |s| *s) as f64
                / gt.horizon.as_micros() as f64
        };
        assert!(frac("www.sina.com.cn") > 0.6, "sina {}", frac("www.sina.com.cn"));
        assert!(frac("www.berkeley.edu") < 0.05);
        // iitb's replicas flap hard-down instead of sharing a degradation.
        let si = sites.iter().position(|s| s.hostname == "www.iitb.ac.in").unwrap();
        let addr0 = site_addresses(si, sites[si].layout)[0];
        let flap = gt.replica_hard_down[&addr0]
            .micros_matching(SimTime::ZERO, gt.horizon, |s| *s) as f64
            / gt.horizon.as_micros() as f64;
        assert!((0.05..0.16).contains(&flap), "iitb flap fraction {flap}");
    }

    #[test]
    fn same_subnet_replicas_share_fault_group() {
        let (_, sites, gt) = small_truth(24);
        let si = sites
            .iter()
            .position(|s| matches!(s.layout, ReplicaLayout::MultiSameSubnet { .. }))
            .unwrap();
        let addrs = site_addresses(si, sites[si].layout);
        let gids: HashSet<u32> = addrs.iter().map(|a| gt.replica_group_of[a]).collect();
        assert_eq!(gids.len(), 1);
        // Spread replicas get independent hard-down flap timelines and no
        // shared degradation group.
        let sj = sites
            .iter()
            .position(|s| matches!(s.layout, ReplicaLayout::MultiSpread { .. }))
            .unwrap();
        let addrs = site_addresses(sj, sites[sj].layout);
        for a in &addrs {
            assert!(gt.replica_hard_down.contains_key(a));
            assert!(!gt.replica_group_of.contains_key(a));
        }
    }

    #[test]
    fn zone_faults_exist_for_brazzil_and_espn() {
        let (_, _, gt) = small_truth(24);
        let brazzil: DomainName = "brazzil.com".parse().unwrap();
        let go: DomainName = "go.com".parse().unwrap();
        assert!(gt.zone_error.contains_key(&brazzil));
        assert!(gt.zone_error.contains_key(&go));
    }

    #[test]
    fn severe_events_exist_and_scale() {
        let (_, _, gt) = small_truth(744);
        // ~111 at full month (showcase clients add theirs on top).
        assert!(
            gt.severe_bgp.len() >= 100 && gt.severe_bgp.len() <= 260,
            "severe events: {}",
            gt.severe_bgp.len()
        );
        // The kscy-style low-visibility events exist.
        assert!(gt.severe_bgp.iter().any(|e| e.neighbors == 2));
        // And the coupled ≥70-neighbor storms dominate.
        let heavy = gt.severe_bgp.iter().filter(|e| e.neighbors >= 70).count();
        assert!(heavy * 100 / gt.severe_bgp.len() > 70);
    }

    #[test]
    fn materialization_is_deterministic() {
        let fleet = build_fleet();
        let sites = build_sites();
        let a = GroundTruth::materialize(&fleet, &sites, 48, 99);
        let b = GroundTruth::materialize(&fleet, &sites, 48, 99);
        assert_eq!(a.blocked, b.blocked);
        assert_eq!(a.severe_bgp.len(), b.severe_bgp.len());
        for i in 0..fleet.len() {
            let sa: Vec<_> = a.link[i].segments().map(|(s, e, v)| (s, e, *v)).collect();
            let sb: Vec<_> = b.link[i].segments().map(|(s, e, v)| (s, e, *v)).collect();
            assert_eq!(sa, sb, "client {i} link timeline differs");
        }
    }

    #[test]
    fn union_of_timelines() {
        let a = Timeline::from_changes(
            false,
            vec![
                (SimTime::from_secs(10), true),
                (SimTime::from_secs(20), false),
            ],
        );
        let b = Timeline::from_changes(
            false,
            vec![
                (SimTime::from_secs(15), true),
                (SimTime::from_secs(30), false),
            ],
        );
        let u = union(&a, &b);
        assert!(!*u.at(SimTime::from_secs(5)));
        assert!(*u.at(SimTime::from_secs(12)));
        assert!(*u.at(SimTime::from_secs(18)));
        assert!(*u.at(SimTime::from_secs(25)));
        assert!(!*u.at(SimTime::from_secs(31)));
    }

    #[test]
    fn canonical_host_forms() {
        assert_eq!(canonical_host("www.amazon.com"), "content.amazon.com");
        assert_eq!(canonical_host("espn.go.com"), "content.espn.go.com");
    }

    #[test]
    fn process_for_zero_never_fires() {
        let p = process_for(0.0, SimDuration::from_secs(60));
        let mut rng = SimRng::new(1);
        let tl = p.materialize(&mut rng, SimTime::from_hours(744));
        assert_eq!(tl.change_count(), 1);
    }
}
