//! Per-client fault intensities: the calibrated knobs of the 2005 Internet.

use crate::clients::ClientProfile;
use model::SimDuration;

/// Per-client fault intensities (long-run down fractions and noise rates).
#[derive(Clone, Copy, Debug)]
pub struct FaultProfile {
    /// Shared (site-level) last-mile/LDNS-path outage fraction.
    pub shared_link_down: f64,
    /// Client-own last-mile outage fraction.
    pub own_link_down: f64,
    /// LDNS server outage fraction.
    pub ldns_down: f64,
    /// Shared wide-area outage fraction.
    pub shared_wan_down: f64,
    /// Client-own wide-area outage fraction.
    pub own_wan_down: f64,
    /// Machine powered off fraction (no accesses made).
    pub machine_down: f64,
    /// Mean episode length for link/LDNS faults.
    pub link_episode: SimDuration,
    /// Mean episode length for WAN faults.
    pub wan_episode: SimDuration,
    /// Baseline per-packet loss on this client's paths.
    pub base_loss: f64,
    /// Per-connection transient failure probability (background noise).
    pub noise_prob: f64,
    /// Noise failure mix: [no-connection, no-response, stall].
    pub noise_mix: [f64; 3],
    /// Mean RTT from this client to US-based sites.
    pub base_rtt: SimDuration,
}

impl FaultProfile {
    /// Calibrated intensities per archetype. Targets: Figure 1's per-category
    /// failure rates (PL 2.8%, BB 1.3%, DU 0.7%, CN 0.8%) and breakdowns
    /// (DNS 34–42%, TCP 57–64%), Figure 3's no-connection shares, Table 5's
    /// blame split, and Tables 7/8's co-location similarity structure.
    pub fn for_profile(profile: ClientProfile) -> FaultProfile {
        let minutes = |m: u64| SimDuration::from_secs(m * 60);
        let ms = SimDuration::from_millis;
        let pl = FaultProfile {
            shared_link_down: 0.0034,
            own_link_down: 0.0030,
            ldns_down: 0.0004,
            shared_wan_down: 0.0006,
            own_wan_down: 0.0001,
            machine_down: 0.035,
            link_episode: minutes(25),
            wan_episode: minutes(18),
            base_loss: 0.006,
            noise_prob: 0.0035,
            noise_mix: [0.55, 0.25, 0.20],
            base_rtt: ms(45),
        };
        match profile {
            ClientProfile::PlTypical => pl,
            ClientProfile::PlIntelShared => FaultProfile {
                // Frequent short shared WAN drops: nearly every hour is a
                // client-side episode, and both nodes share them (98%).
                shared_wan_down: 0.075,
                wan_episode: minutes(4),
                shared_link_down: 0.004,
                own_link_down: 0.0008,
                own_wan_down: 0.0002,
                ..pl
            },
            ClientProfile::PlColumbiaNoisy => FaultProfile {
                // Heavy node-specific WAN faults plus a subgroup-shared
                // component that the quiet node does not see.
                own_wan_down: 0.016,
                shared_wan_down: 0.018, // keyed per-subgroup, see below
                wan_episode: minutes(8),
                ..pl
            },
            ClientProfile::PlColumbiaQuiet => FaultProfile {
                own_wan_down: 0.0006,
                shared_wan_down: 0.0004,
                own_link_down: 0.0015,
                ..pl
            },
            ClientProfile::PlKaist => FaultProfile {
                shared_wan_down: 0.0035,
                own_wan_down: 0.003,
                wan_episode: minutes(45),
                ..pl
            },
            ClientProfile::PlBgpShowcase => FaultProfile {
                // A handful of multi-hour WAN blackouts, each mirrored by a
                // ≥70-neighbor BGP withdrawal storm (Figure 5).
                own_wan_down: 0.012,
                wan_episode: minutes(100),
                ..pl
            },
            ClientProfile::PlKscyShowcase => FaultProfile {
                own_wan_down: 0.004,
                wan_episode: minutes(35),
                ..pl
            },
            ClientProfile::Dialup => FaultProfile {
                shared_link_down: 0.0,
                own_link_down: 0.0013,
                ldns_down: 0.0002,
                shared_wan_down: 0.0,
                own_wan_down: 0.0003,
                machine_down: 0.01,
                link_episode: minutes(15),
                wan_episode: minutes(15),
                base_loss: 0.009,
                noise_prob: 0.0040,
                noise_mix: [0.20, 0.40, 0.40],
                base_rtt: ms(160),
            },
            ClientProfile::CorpProxied | ClientProfile::CorpExternal => FaultProfile {
                shared_link_down: 0.0004,
                own_link_down: 0.0004,
                ldns_down: 0.0002,
                shared_wan_down: 0.0006,
                own_wan_down: 0.0002,
                machine_down: 0.008,
                link_episode: minutes(12),
                wan_episode: minutes(12),
                base_loss: 0.004,
                noise_prob: 0.0012,
                noise_mix: [0.7, 0.18, 0.12],
                base_rtt: ms(55),
            },
            ClientProfile::Broadband => FaultProfile {
                shared_link_down: 0.0009,
                own_link_down: 0.0026,
                ldns_down: 0.0008,
                shared_wan_down: 0.0003,
                own_wan_down: 0.0003,
                machine_down: 0.015,
                link_episode: minutes(20),
                wan_episode: minutes(20),
                base_loss: 0.011,
                noise_mix: [0.05, 0.45, 0.50],
                noise_prob: 0.0100,
                base_rtt: ms(60),
            },
        }
    }
}
