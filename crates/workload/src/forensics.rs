//! Tail-sampled forensic exemplar store.
//!
//! Keeping every [`model::TxnTrace`] for a month-long reproduction run would
//! dwarf the dataset itself, so the runner tail-samples: traces are bucketed
//! by (true blame class × fault archetype) and each bucket keeps at most
//! [`report::caps::MAX_SAMPLES`] failures (first in record order) plus the
//! top-`MAX_SAMPLES` slowest successes. Admission is fully deterministic —
//! no wall clock, no RNG — so the same seed yields the same exemplars at any
//! thread count, and memory is bounded by the bucket grid regardless of how
//! many transactions the run executes.
//!
//! Queries (`bench explain`) can additionally *pin* specific
//! `(client, site, hour)` keys; one trace per pinned key is kept outside
//! the bucket caps — the first failure, or the first success until a
//! failure arrives — which is how `explain --audit-misses` guarantees an
//! exemplar for every missed audit sample and how a query always finds
//! *something* for a key that saw traffic.

use model::{FaultSet, TraceExemplar, TrueBlame};
use report::caps::MAX_SAMPLES;

/// Ground-truth blame classes a bucket row can carry.
pub const BLAME_CLASSES: usize = 5;
/// Archetype columns: the seven adversarial archetypes plus a "none" slot
/// for faults outside the archetype suite (and healthy traffic).
pub const ARCHETYPE_SLOTS: usize = 8;

/// Archetype bits in `netprofiler::audit::ARCHETYPES` order; slot 7 is
/// "no archetype bit set".
pub const ARCHETYPE_BITS: [FaultSet; ARCHETYPE_SLOTS - 1] = [
    FaultSet::BGP_TRANSIENT,
    FaultSet::CENSORED,
    FaultSet::COLO_BLAST,
    FaultSet::VANTAGE_SPLIT,
    FaultSet::CDN_BROWNOUT,
    FaultSet::MTU_BLACKHOLE,
    FaultSet::WRONG_DNS,
];

fn blame_index(blame: TrueBlame) -> usize {
    match blame {
        TrueBlame::ClientSide => 0,
        TrueBlame::ServerSide => 1,
        TrueBlame::Both => 2,
        TrueBlame::PairSpecific => 3,
        TrueBlame::Noise => 4,
    }
}

/// Forensic-capture knobs carried by `ExperimentConfig`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ForensicsConfig {
    /// `(client, site, hour)` keys that keep one trace unconditionally,
    /// outside the bucket caps: the first failure, or (when the key never
    /// failed) the first success.
    pub pin: Vec<(u16, u16, u32)>,
}

#[derive(Clone, Debug, Default)]
struct Bucket {
    /// First `MAX_SAMPLES` failures in record order.
    failures: Vec<TraceExemplar>,
    /// Top `MAX_SAMPLES` successes by (duration desc, client, record index).
    successes: Vec<TraceExemplar>,
}

fn success_order(a: &TraceExemplar, b: &TraceExemplar) -> std::cmp::Ordering {
    b.duration_us
        .cmp(&a.duration_us)
        .then(a.client.cmp(&b.client))
        .then(a.record_index.cmp(&b.record_index))
}

impl Bucket {
    fn offer(&mut self, ex: &TraceExemplar) {
        if ex.failed {
            if self.failures.len() < MAX_SAMPLES {
                self.failures.push(ex.clone());
            }
        } else {
            self.successes.push(ex.clone());
            self.successes.sort_by(success_order);
            self.successes.truncate(MAX_SAMPLES);
        }
    }
}

/// The bounded exemplar store one experiment run produces.
#[derive(Clone, Debug)]
pub struct ExemplarStore {
    /// `BLAME_CLASSES × ARCHETYPE_SLOTS` grid, row-major by blame class.
    buckets: Vec<Bucket>,
    pin_keys: Vec<(u16, u16, u32)>,
    pinned: Vec<TraceExemplar>,
}

impl Default for ExemplarStore {
    fn default() -> Self {
        ExemplarStore::new(&[])
    }
}

impl ExemplarStore {
    /// An empty store that will pin one trace for each `pin` key (the
    /// first failure, falling back to the first success).
    pub fn new(pin: &[(u16, u16, u32)]) -> Self {
        ExemplarStore {
            buckets: vec![Bucket::default(); BLAME_CLASSES * ARCHETYPE_SLOTS],
            pin_keys: pin.to_vec(),
            pinned: Vec::new(),
        }
    }

    /// Offer one trace for admission. Deterministic: depends only on the
    /// exemplar and on what was admitted before it, never on time or RNG.
    pub fn offer(&mut self, ex: TraceExemplar) {
        if self.pin_keys.contains(&ex.key()) {
            match self.pinned.iter_mut().find(|p| p.key() == ex.key()) {
                None => self.pinned.push(ex.clone()),
                // A success placeholder upgrades to the key's first failure.
                Some(p) if ex.failed && !p.failed => *p = ex.clone(),
                Some(_) => {}
            }
        }
        let row = blame_index(ex.truth.true_blame()) * ARCHETYPE_SLOTS;
        let mut matched = false;
        for (slot, bit) in ARCHETYPE_BITS.iter().enumerate() {
            if ex.truth.contains(*bit) {
                matched = true;
                self.buckets[row + slot].offer(&ex);
            }
        }
        if !matched {
            self.buckets[row + ARCHETYPE_SLOTS - 1].offer(&ex);
        }
    }

    /// Drop exemplars whose record was discarded by the apparatus keep-mask
    /// and remap the survivors' `record_index` to their kept rank, mirroring
    /// what `retain` does to the record vector itself.
    pub fn apply_keep_mask(&mut self, keep: &[bool]) {
        // kept_rank[i] = number of kept records strictly before i.
        let mut kept_rank = Vec::with_capacity(keep.len());
        let mut rank = 0usize;
        for &k in keep {
            kept_rank.push(rank);
            rank += k as usize;
        }
        let fix = |v: &mut Vec<TraceExemplar>| {
            v.retain(|ex| keep.get(ex.record_index).copied().unwrap_or(false));
            for ex in v.iter_mut() {
                ex.record_index = kept_rank[ex.record_index];
            }
        };
        for b in &mut self.buckets {
            fix(&mut b.failures);
            fix(&mut b.successes);
        }
        fix(&mut self.pinned);
    }

    /// Shift every `record_index` by `base` (used when a per-client store is
    /// appended after `base` records from earlier clients).
    pub fn rebase(&mut self, base: usize) {
        for ex in self
            .buckets
            .iter_mut()
            .flat_map(|b| b.failures.iter_mut().chain(b.successes.iter_mut()))
            .chain(self.pinned.iter_mut())
        {
            ex.record_index += base;
        }
    }

    /// Merge another store into this one, bucket by bucket, preserving the
    /// admission rules. Merging per-client stores in client order reproduces
    /// what a single sequential store would have admitted, because every
    /// per-client bucket already holds at least as many candidates as the
    /// merged cap.
    pub fn merge(&mut self, other: ExemplarStore) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets) {
            let room = MAX_SAMPLES.saturating_sub(mine.failures.len());
            mine.failures.extend(theirs.failures.into_iter().take(room));
            mine.successes.extend(theirs.successes);
            mine.successes.sort_by(success_order);
            mine.successes.truncate(MAX_SAMPLES);
        }
        for p in other.pinned {
            match self.pinned.iter_mut().find(|q| q.key() == p.key()) {
                None => self.pinned.push(p),
                Some(q) if p.failed && !q.failed => *q = p,
                Some(_) => {}
            }
        }
    }

    /// Total exemplars held (bucket slots plus pins).
    pub fn len(&self) -> usize {
        self.buckets
            .iter()
            .map(|b| b.failures.len() + b.successes.len())
            .sum::<usize>()
            + self.pinned.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every exemplar, bucket by bucket (failures before successes), pinned
    /// traces last. Deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = &TraceExemplar> {
        self.buckets
            .iter()
            .flat_map(|b| b.failures.iter().chain(b.successes.iter()))
            .chain(self.pinned.iter())
    }

    /// One exemplar per distinct `(client, site, hour)` key, sorted by key —
    /// the render-facing view (a trace that matched several archetype bits
    /// appears once). Failed exemplars win over successes for the same key.
    pub fn unique_by_key(&self) -> Vec<&TraceExemplar> {
        let mut all: Vec<&TraceExemplar> = self.iter().collect();
        all.sort_by_key(|ex| (ex.key(), !ex.failed));
        all.dedup_by_key(|ex| ex.key());
        all
    }

    /// Find an exemplar for `key`, preferring a failed one.
    pub fn find(&self, key: (u16, u16, u32)) -> Option<&TraceExemplar> {
        self.iter()
            .filter(|ex| ex.key() == key)
            .max_by_key(|ex| ex.failed)
    }

    /// Sorted, de-duplicated keys of everything held.
    pub fn keys(&self) -> Vec<(u16, u16, u32)> {
        let mut keys: Vec<_> = self.iter().map(|ex| ex.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use model::{SimTime, TxnTrace};

    fn ex(client: u16, record_index: usize, failed: bool, truth: FaultSet, dur: u64) -> TraceExemplar {
        TraceExemplar {
            client,
            site: 1,
            hour: 3,
            record_index,
            start: SimTime::from_hours(3),
            duration_us: dur,
            failed,
            truth,
            trace: TxnTrace::default(),
        }
    }

    #[test]
    fn failure_cap_keeps_first_in_record_order() {
        let mut store = ExemplarStore::default();
        for i in 0..20 {
            store.offer(ex(0, i, true, FaultSet::CENSORED, 100));
        }
        let kept: Vec<usize> = store.iter().map(|e| e.record_index).collect();
        assert_eq!(kept, vec![0, 1, 2, 3, 4]);
        assert_eq!(store.len(), MAX_SAMPLES);
    }

    #[test]
    fn success_topk_is_slowest_first_with_deterministic_ties() {
        let mut store = ExemplarStore::default();
        for i in 0..10 {
            store.offer(ex(i as u16, i, false, FaultSet::EMPTY, 1000 - (i as u64 % 3)));
        }
        let kept: Vec<(u64, u16)> =
            store.iter().map(|e| (e.duration_us, e.client)).collect();
        // All durations in {998,999,1000}; slowest first, ties by client.
        assert_eq!(kept, vec![(1000, 0), (1000, 3), (1000, 6), (1000, 9), (999, 1)]);
    }

    #[test]
    fn memory_is_bounded_by_bucket_grid() {
        let mut store = ExemplarStore::default();
        for i in 0..50_000usize {
            let truth = if i % 2 == 0 { FaultSet::CENSORED } else { FaultSet::EMPTY };
            store.offer(ex((i % 7) as u16, i, i % 3 == 0, truth, i as u64));
        }
        assert!(
            store.len() <= BLAME_CLASSES * ARCHETYPE_SLOTS * 2 * MAX_SAMPLES,
            "store grew past the bucket caps: {}",
            store.len()
        );
    }

    #[test]
    fn multi_archetype_truth_lands_in_each_matching_bucket() {
        let mut store = ExemplarStore::default();
        store.offer(ex(0, 0, true, FaultSet::CENSORED | FaultSet::MTU_BLACKHOLE, 5));
        // One copy per matching archetype column…
        assert_eq!(store.len(), 2);
        // …but the render view collapses them back to one.
        assert_eq!(store.unique_by_key().len(), 1);
    }

    #[test]
    fn keep_mask_drops_and_remaps_record_indices() {
        let mut store = ExemplarStore::default();
        store.offer(ex(0, 0, true, FaultSet::CENSORED, 5));
        store.offer(ex(0, 2, true, FaultSet::CENSORED, 5));
        store.offer(ex(0, 4, true, FaultSet::CENSORED, 5));
        // Drop record 2: survivors 0 and 4 become kept ranks 0 and 3.
        store.apply_keep_mask(&[true, true, false, true, true]);
        let kept: Vec<usize> = store.iter().map(|e| e.record_index).collect();
        assert_eq!(kept, vec![0, 3]);
    }

    #[test]
    fn pinned_keys_survive_outside_bucket_caps() {
        let mut store = ExemplarStore::new(&[(9, 1, 3)]);
        for i in 0..MAX_SAMPLES {
            store.offer(ex(0, i, true, FaultSet::CENSORED, 5));
        }
        // Bucket is full; the pinned key is still admitted.
        let mut pinned = ex(9, 99, true, FaultSet::CENSORED, 5);
        pinned.site = 1;
        store.offer(pinned);
        assert!(store.find((9, 1, 3)).is_some());
        // A second hit on the same key does not duplicate the pin.
        let again = ex(9, 120, true, FaultSet::CENSORED, 5);
        store.offer(again);
        assert_eq!(store.iter().filter(|e| e.key() == (9, 1, 3) && e.failed).count(), 1);
    }

    #[test]
    fn pin_falls_back_to_first_success_until_a_failure_arrives() {
        let mut store = ExemplarStore::new(&[(9, 1, 3)]);
        let mut ok = ex(9, 10, false, FaultSet::EMPTY, 5);
        ok.site = 1;
        store.offer(ok);
        // A query key that never failed still yields its first success.
        assert!(matches!(store.find((9, 1, 3)), Some(e) if !e.failed));
        // A later success does not displace it; a failure does.
        let mut ok2 = ex(9, 11, false, FaultSet::EMPTY, 50);
        ok2.site = 1;
        store.offer(ok2);
        let mut bad = ex(9, 12, true, FaultSet::CENSORED, 5);
        bad.site = 1;
        store.offer(bad);
        let found = store.find((9, 1, 3)).expect("key is held");
        assert!(found.failed, "failure displaced the success placeholder");
        assert_eq!(found.record_index, 12);
        let unique = store.unique_by_key();
        assert_eq!(unique.iter().filter(|e| e.key() == (9, 1, 3)).count(), 1);
    }

    #[test]
    fn merge_in_client_order_matches_sequential_admission() {
        let mk = |client: u16, base: usize| {
            let mut s = ExemplarStore::default();
            for i in 0..4 {
                s.offer(ex(client, base + i, true, FaultSet::COLO_BLAST, 10));
                s.offer(ex(client, base + 4 + i, false, FaultSet::COLO_BLAST, 100 + i as u64));
            }
            s
        };
        let mut merged = ExemplarStore::default();
        merged.merge(mk(0, 0));
        merged.merge(mk(1, 100));
        let mut sequential = ExemplarStore::default();
        for i in 0..4 {
            sequential.offer(ex(0, i, true, FaultSet::COLO_BLAST, 10));
            sequential.offer(ex(0, 4 + i, false, FaultSet::COLO_BLAST, 100 + i as u64));
        }
        for i in 0..4 {
            sequential.offer(ex(1, 100 + i, true, FaultSet::COLO_BLAST, 10));
            sequential.offer(ex(1, 104 + i, false, FaultSet::COLO_BLAST, 100 + i as u64));
        }
        let a: Vec<_> = merged.iter().map(|e| (e.client, e.record_index, e.failed)).collect();
        let b: Vec<_> = sequential.iter().map(|e| (e.client, e.record_index, e.failed)).collect();
        assert_eq!(a, b);
    }
}
