//! Experiment configuration and the ground-truth world.
//!
//! This crate owns everything the paper's Section 3 describes:
//!
//! * [`clients`] — the measurement fleet of Table 1: 95 PlanetLab nodes
//!   across 64 sites (with the co-location structure the similarity
//!   analysis needs), 26 dialup "virtual" clients, 5 proxied corporate
//!   clients plus SEAEXT, and 7 broadband clients — 134 effective clients;
//! * [`sites`] — the 80 target websites of Table 2 with their replica
//!   layouts (6 CDN-served, 42 single-replica, 32 multi-replica mostly on
//!   one /24), index sizes and redirect chains;
//! * [`faults`] — the **ground-truth fault model**: per-client last-mile and
//!   LDNS outages, wide-area (BGP-coupled) outages, co-location-shared
//!   faults, per-server degradation episodes with heavy-tailed durations,
//!   broken-DNS zones, the 38 near-permanently blocked client–site pairs,
//!   and background transient noise — all materialized as deterministic
//!   timelines;
//! * [`view`] — per-vantage [`webclient::AccessEnvironment`] implementations
//!   that answer fault questions from those timelines;
//! * [`experiment`] — the runner: executes the month of accesses for every
//!   client (deterministically parallel across clients), generates and
//!   cleans the coupled BGP feed, and assembles the `model::Dataset`.
//!
//! Everything is derived from a single `seed`, so the entire month-long
//! "Internet" is reproducible bit-for-bit.

pub mod apparatus;
pub mod clients;
pub mod experiment;
pub mod faults;
pub mod forensics;
pub mod sites;
pub mod validation;
pub mod view;

pub use apparatus::ApparatusFaults;
pub use clients::{build_fleet, ClientSpec, FleetSpec};
pub use experiment::{run_experiment, ClientOutcome, ExperimentConfig, ExperimentOutput, RunReport};
pub use faults::{AdversarialProfile, AdversarialTruth, FaultProfile, GroundTruth, ARCHETYPE_NAMES};
pub use forensics::{ExemplarStore, ForensicsConfig};
pub use sites::{build_sites, ReplicaLayout, SiteSpec};
pub use validation::{score_attribution, AttributionScore};
pub use view::{ClientView, ProxyView};
