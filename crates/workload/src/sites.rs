//! The 80 target websites (Table 2) and their ground-truth layouts.

use model::SiteCategory;
use std::net::Ipv4Addr;

/// How a site's server addresses are laid out.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReplicaLayout {
    /// One server IP (42 of the 80 sites qualify as single-replica).
    Single,
    /// `count` replicas on the same /24 (prone to correlated failure —
    /// Section 4.5 finds almost all total-replica failures are same-subnet).
    MultiSameSubnet { count: u8 },
    /// `count` replicas on distinct /24s (independent failures).
    MultiSpread { count: u8 },
    /// CDN-served: a large rotating address pool, so no single address
    /// reaches the 10%-of-connections bar to qualify as a replica.
    Cdn { pool: u16 },
}

impl ReplicaLayout {
    /// Number of distinct addresses the site answers with.
    pub fn address_count(&self) -> u16 {
        match *self {
            ReplicaLayout::Single => 1,
            ReplicaLayout::MultiSameSubnet { count } | ReplicaLayout::MultiSpread { count } => {
                u16::from(count)
            }
            ReplicaLayout::Cdn { pool } => pool,
        }
    }

    /// Whether the analysis should see qualified replicas at all.
    pub fn is_cdn(&self) -> bool {
        matches!(self, ReplicaLayout::Cdn { .. })
    }
}

/// The reliability archetype driving a site's fault processes (calibrated
/// against Table 6 and Sections 4.4.5/4.2).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SiteReliability {
    /// Long-run fraction of time the site is in a degraded episode.
    pub down_fraction: f64,
    /// Probability an access fails while degraded (episodes are abnormal
    /// failure *rates*, not blackouts — Section 2.2).
    pub episode_fail_prob: f64,
    /// Fraction of time the site's authoritative DNS is unreachable
    /// (produces non-LDNS timeouts).
    pub auth_dns_down_fraction: f64,
    /// Fraction of time the zone answers with an error (brazzil/espn-style
    /// misconfiguration bursts).
    pub zone_error_fraction: f64,
    /// For spread-replica sites only: fraction of time each replica is
    /// hard-down in short (minutes-long) flaps. The first replica flaps at
    /// this rate, the others at half of it. Short flaps hover the site's
    /// hourly failure rate around the episode threshold and are the
    /// mechanism behind the Table 9 proxy residuals.
    pub replica_flap_fraction: f64,
}

impl SiteReliability {
    pub const SOLID: SiteReliability = SiteReliability {
        down_fraction: 0.004,
        episode_fail_prob: 0.20,
        auth_dns_down_fraction: 0.0004,
        zone_error_fraction: 0.0,
        replica_flap_fraction: 0.0,
    };

    pub const TYPICAL: SiteReliability = SiteReliability {
        down_fraction: 0.012,
        episode_fail_prob: 0.20,
        auth_dns_down_fraction: 0.0006,
        zone_error_fraction: 0.0,
        replica_flap_fraction: 0.0,
    };

    pub const SHAKY: SiteReliability = SiteReliability {
        down_fraction: 0.04,
        episode_fail_prob: 0.25,
        auth_dns_down_fraction: 0.0015,
        zone_error_fraction: 0.0,
        replica_flap_fraction: 0.0,
    };
}

/// Static specification of one website.
#[derive(Clone, Debug)]
pub struct SiteSpec {
    pub hostname: &'static str,
    pub category: SiteCategory,
    pub layout: ReplicaLayout,
    /// Index object size in bytes.
    pub index_bytes: u64,
    /// Whether `hostname` is reached via a redirect hop from the bare
    /// domain (inflates connection counts).
    pub redirect_hop: bool,
    pub reliability: SiteReliability,
    /// Extra mean RTT to this site (intl sites are farther from the mostly
    /// US fleet).
    pub rtt_penalty_ms: u32,
}

fn site(
    hostname: &'static str,
    category: SiteCategory,
    layout: ReplicaLayout,
    index_bytes: u64,
    redirect_hop: bool,
    reliability: SiteReliability,
) -> SiteSpec {
    let rtt_penalty_ms = if category.is_us() { 0 } else { 90 };
    SiteSpec {
        hostname,
        category,
        layout,
        index_bytes,
        redirect_hop,
        reliability,
        rtt_penalty_ms,
    }
}

/// Shorthands used in the table below.
fn rel(down_fraction: f64, episode_fail_prob: f64) -> SiteReliability {
    SiteReliability {
        down_fraction,
        episode_fail_prob,
        ..SiteReliability::TYPICAL
    }
}

/// Build the 80-site list.
///
/// Reliability assignments reproduce the paper's named heavy hitters
/// (Table 6: sina.com.cn and iitb.ac.in degraded almost all month, sohu,
/// craigslist, brazzil, technion, chinabroadcast, ucl, nih, mit), the DNS
/// error concentration on brazzil/espn (Figure 2), and the 3-replica iitb
/// layout behind the proxy fail-over finding (Table 9, Section 4.7).
pub fn build_sites() -> Vec<SiteSpec> {
    use ReplicaLayout as L;
    use SiteCategory::*;
    let cdn = |pool| L::Cdn { pool };
    let multi = |count| L::MultiSameSubnet { count };
    let spread = |count| L::MultiSpread { count };

    vec![
        // --- US-EDU (8) ----------------------------------------------------
        site("www.berkeley.edu", UsEdu, L::Single, 28_000, false, SiteReliability::SOLID),
        site("www.washington.edu", UsEdu, L::Single, 26_000, false, SiteReliability::SOLID),
        site("www.cmu.edu", UsEdu, L::Single, 22_000, false, SiteReliability::TYPICAL),
        site("www.umn.edu", UsEdu, L::Single, 30_000, false, SiteReliability::TYPICAL),
        site("www.caltech.edu", UsEdu, L::Single, 18_000, false, SiteReliability::SOLID),
        site("www.nmt.edu", UsEdu, L::Single, 15_000, false, SiteReliability::SHAKY),
        site("www.ufl.edu", UsEdu, L::Single, 24_000, false, SiteReliability::TYPICAL),
        // mit.edu: 23 server-side episodes, spread 91.8% (Table 6)
        site("www.mit.edu", UsEdu, multi(2), 21_000, false, rel(0.030, 0.22)),
        // --- US-POPULAR (22) -----------------------------------------------
        site("www.amazon.com", UsPopular, multi(3), 62_000, true, SiteReliability::SOLID),
        site("www.microsoft.com", UsPopular, cdn(40), 45_000, true, SiteReliability::SOLID),
        site("www.ebay.com", UsPopular, multi(3), 55_000, true, SiteReliability::SOLID),
        site("www.mapquest.com", UsPopular, multi(2), 35_000, false, SiteReliability::TYPICAL),
        site("www.cnn.com", UsPopular, multi(4), 70_000, false, SiteReliability::SOLID),
        site("www.cnnsi.com", UsPopular, multi(2), 52_000, true, SiteReliability::TYPICAL),
        site("www.webmd.com", UsPopular, L::Single, 41_000, false, SiteReliability::TYPICAL),
        // espn.go.com: 30% of the DNS error responses (Figure 2)
        site(
            "espn.go.com",
            UsPopular,
            multi(3),
            68_000,
            false,
            SiteReliability {
                zone_error_fraction: 0.017,
                ..SiteReliability::SOLID
            },
        ),
        site("www.sportsline.com", UsPopular, L::Single, 58_000, false, SiteReliability::TYPICAL),
        site("www.expedia.com", UsPopular, multi(3), 47_000, true, SiteReliability::SOLID),
        site("www.orbitz.com", UsPopular, multi(2), 44_000, true, SiteReliability::TYPICAL),
        site("www.imdb.com", UsPopular, multi(2), 39_000, false, SiteReliability::SOLID),
        site("www.google.com", UsPopular, cdn(60), 12_000, false, SiteReliability::SOLID),
        site("www.yahoo.com", UsPopular, cdn(50), 34_000, false, SiteReliability::SOLID),
        site("games.yahoo.com", UsPopular, multi(2), 42_000, false, SiteReliability::SOLID),
        site("weather.yahoo.com", UsPopular, multi(2), 37_000, false, SiteReliability::SOLID),
        site("www.msn.com", UsPopular, cdn(30), 40_000, false, SiteReliability::SOLID),
        site("www.passport.net", UsPopular, multi(2), 9_000, true, SiteReliability::SOLID),
        site("www.aol.com", UsPopular, multi(3), 48_000, true, SiteReliability::SOLID),
        site("www.nytimes.com", UsPopular, multi(2), 65_000, false, SiteReliability::TYPICAL),
        site("www.lycos.com", UsPopular, L::Single, 38_000, false, SiteReliability::TYPICAL),
        site("www.cnet.com", UsPopular, multi(2), 56_000, true, SiteReliability::TYPICAL),
        // --- US-MISC (15) ---------------------------------------------------
        site("www.latimes.com", UsMisc, L::Single, 61_000, false, SiteReliability::TYPICAL),
        site("www.nfl.com", UsMisc, multi(2), 54_000, false, SiteReliability::TYPICAL),
        site("www.pbs.org", UsMisc, L::Single, 33_000, false, SiteReliability::TYPICAL),
        site("www.cisco.com", UsMisc, multi(2), 29_000, false, SiteReliability::SOLID),
        site("www.juniper.net", UsMisc, L::Single, 25_000, false, SiteReliability::SOLID),
        site("www.ibm.com", UsMisc, L::Single, 36_000, true, SiteReliability::SOLID),
        site("www.fastclick.com", UsMisc, L::Single, 14_000, false, SiteReliability::SHAKY),
        site("www.advertising.com", UsMisc, L::Single, 16_000, false, SiteReliability::SHAKY),
        site("www.slashdot.org", UsMisc, L::Single, 49_000, false, SiteReliability::TYPICAL),
        site("www.un.org", UsMisc, L::Single, 31_000, false, SiteReliability::TYPICAL),
        // craigslist.org: 166 episodes, spread 70.9% (Table 6, US-based)
        site("www.craigslist.org", UsMisc, L::Single, 20_000, false, rel(0.21, 0.15)),
        site("www.state.gov", UsMisc, L::Single, 27_000, false, SiteReliability::TYPICAL),
        // nih.gov: 35 episodes, spread 60.4%
        site("www.nih.gov", UsMisc, multi(2), 23_000, false, rel(0.045, 0.20)),
        site("www.nasa.gov", UsMisc, multi(2), 32_000, false, SiteReliability::TYPICAL),
        // mp3.com: the northwestern.edu checksum case involves this server
        site("www.mp3.com", UsMisc, L::Single, 43_000, false, SiteReliability::SHAKY),
        // --- INTL-EDU (10) --------------------------------------------------
        // iitb.ac.in: 759 episodes, spread 85.1%; 3 replicas, often 1–2 down
        // in short flaps (the proxy fail-over case of Section 4.7). The
        // flaps keep the hourly failure rate hovering near the threshold,
        // giving it the second-highest episode count.
        site(
            "www.iitb.ac.in",
            IntlEdu,
            spread(3),
            19_000,
            false,
            SiteReliability {
                replica_flap_fraction: 0.06,
                ..rel(0.0, 0.0)
            },
        ),
        site("www.iitm.ac.in", IntlEdu, L::Single, 17_000, false, SiteReliability::SHAKY),
        // technion.ac.il: 90 episodes; cs.technion.ac.il: 95
        site("www.technion.ac.il", IntlEdu, L::Single, 21_000, false, rel(0.115, 0.20)),
        site("cs.technion.ac.il", IntlEdu, L::Single, 18_000, false, rel(0.12, 0.20)),
        site("www.ucl.ac.uk", IntlEdu, L::Single, 26_000, false, rel(0.07, 0.22)),
        site("cs.ucl.ac.uk", IntlEdu, L::Single, 16_000, false, SiteReliability::SHAKY),
        site("www.cam.ac.uk", IntlEdu, L::Single, 24_000, false, SiteReliability::TYPICAL),
        site("www.inria.fr", IntlEdu, L::Single, 22_000, false, SiteReliability::TYPICAL),
        site("www.hku.hk", IntlEdu, L::Single, 25_000, false, SiteReliability::SHAKY),
        site("www.nus.edu.sg", IntlEdu, L::Single, 27_000, false, SiteReliability::TYPICAL),
        // --- INTL-POPULAR (15) ------------------------------------------------
        site("www.amazon.co.uk", IntlPopular, multi(2), 58_000, true, SiteReliability::SOLID),
        site("www.amazon.co.jp", IntlPopular, multi(2), 57_000, true, SiteReliability::SOLID),
        site("www.bbc.co.uk", IntlPopular, multi(3), 51_000, false, SiteReliability::SOLID),
        site("www.muenchen.de", IntlPopular, L::Single, 34_000, false, SiteReliability::TYPICAL),
        site("www.terra.com", IntlPopular, multi(2), 46_000, false, SiteReliability::TYPICAL),
        site("www.alibaba.com", IntlPopular, multi(2), 44_000, false, SiteReliability::SHAKY),
        site("www.wanadoo.fr", IntlPopular, L::Single, 39_000, false, SiteReliability::TYPICAL),
        // sohu.com: 243 episodes, spread 72.4%; also 8 blocked pairs
        site("www.sohu.com", IntlPopular, multi(2), 53_000, false, rel(0.31, 0.15)),
        site("sina.com.hk", IntlPopular, L::Single, 48_000, false, SiteReliability::SHAKY),
        site("www.cosmos.com.mx", IntlPopular, L::Single, 29_000, false, SiteReliability::SHAKY),
        // msn.com.tw: 10 blocked pairs
        site("www.msn.com.tw", IntlPopular, multi(2), 41_000, false, SiteReliability::TYPICAL),
        site("www.msn.co.in", IntlPopular, L::Single, 38_000, false, SiteReliability::TYPICAL),
        site("www.google.co.uk", IntlPopular, cdn(20), 12_000, false, SiteReliability::SOLID),
        site("www.google.co.jp", IntlPopular, cdn(20), 12_000, false, SiteReliability::SOLID),
        // sina.com.cn: 764 episodes, spread 78.4%, 448-hour coalesced run;
        // 9 blocked pairs
        site("www.sina.com.cn", IntlPopular, multi(3), 55_000, false, rel(0.92, 0.15)),
        // --- INTL-MISC (10) ---------------------------------------------------
        site("www.lufthansa.com", IntlMisc, multi(2), 42_000, false, SiteReliability::TYPICAL),
        site("english.pravda.ru", IntlMisc, L::Single, 36_000, false, SiteReliability::SHAKY),
        site("www.rediff.com", IntlMisc, multi(2), 47_000, false, SiteReliability::SHAKY),
        site("www.samachar.com", IntlMisc, L::Single, 33_000, false, SiteReliability::SHAKY),
        // chinabroadcast.cn: 89 episodes, spread 73.9%
        site("www.chinabroadcast.cn", IntlMisc, L::Single, 37_000, false, rel(0.11, 0.20)),
        site("www.nttdocomo.co.jp", IntlMisc, L::Single, 28_000, false, SiteReliability::TYPICAL),
        site("www.sony.co.jp", IntlMisc, L::Single, 31_000, false, SiteReliability::SOLID),
        // brazzil.com: 57% of all DNS error responses (SERVFAIL/NXDOMAIN from
        // buggy authoritative servers); 97 server-side episodes
        site(
            "www.brazzil.com",
            IntlMisc,
            L::Single,
            26_000,
            false,
            SiteReliability {
                down_fraction: 0.12,
                episode_fail_prob: 0.20,
                auth_dns_down_fraction: 0.002,
                zone_error_fraction: 0.038,
                replica_flap_fraction: 0.0,
            },
        ),
        // royal.gov.uk: the second proxy-residual site of Table 9 — two
        // replicas on distinct subnets flapping independently.
        site(
            "www.royal.gov.uk",
            IntlMisc,
            spread(2),
            23_000,
            false,
            SiteReliability {
                replica_flap_fraction: 0.05,
                ..rel(0.0, 0.0)
            },
        ),
        site("www.direct.gov.uk", IntlMisc, L::Single, 25_000, false, SiteReliability::TYPICAL),
    ]
}

/// Deterministic ground-truth addresses for site `site_index` under a given
/// layout. Single/multi sites draw from 203.0–203.200; CDN pools from
/// 151.x.y.z so their addresses never qualify as replicas.
pub fn site_addresses(site_index: usize, layout: ReplicaLayout) -> Vec<Ipv4Addr> {
    let s = site_index as u8;
    match layout {
        ReplicaLayout::Single => vec![Ipv4Addr::new(203, s, 10, 80)],
        ReplicaLayout::MultiSameSubnet { count } => (0..count)
            .map(|i| Ipv4Addr::new(203, s, 10, 80 + i))
            .collect(),
        ReplicaLayout::MultiSpread { count } => (0..count)
            .map(|i| Ipv4Addr::new(203, s, 10 + 10 * i, 80))
            .collect(),
        ReplicaLayout::Cdn { pool } => (0..pool)
            .map(|i| Ipv4Addr::new(151, s, (i / 250) as u8, (i % 250) as u8 + 1))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn exactly_eighty_sites() {
        let sites = build_sites();
        assert_eq!(sites.len(), 80);
    }

    #[test]
    fn category_counts_match_table_2() {
        let sites = build_sites();
        let count = |c: SiteCategory| sites.iter().filter(|s| s.category == c).count();
        assert_eq!(count(SiteCategory::UsEdu), 8);
        assert_eq!(count(SiteCategory::UsPopular), 22);
        assert_eq!(count(SiteCategory::UsMisc), 15);
        assert_eq!(count(SiteCategory::IntlEdu), 10);
        assert_eq!(count(SiteCategory::IntlPopular), 15);
        assert_eq!(count(SiteCategory::IntlMisc), 10);
    }

    #[test]
    fn replica_structure_matches_section_4_5() {
        let sites = build_sites();
        let cdn = sites.iter().filter(|s| s.layout.is_cdn()).count();
        let single = sites
            .iter()
            .filter(|s| s.layout == ReplicaLayout::Single)
            .count();
        let multi = sites.len() - cdn - single;
        assert_eq!(cdn, 6, "6 sites with zero qualifying replicas");
        assert_eq!(single, 42, "42 single-replica sites");
        assert_eq!(multi, 32, "32 multi-replica sites");
        // Most multi-replica sites are same-subnet (drives the 85%
        // total-replica-failure share).
        let same_subnet = sites
            .iter()
            .filter(|s| matches!(s.layout, ReplicaLayout::MultiSameSubnet { .. }))
            .count();
        assert!(same_subnet >= 28, "same-subnet multi sites: {same_subnet}");
    }

    #[test]
    fn hostnames_unique_and_parseable() {
        let sites = build_sites();
        let mut seen = HashSet::new();
        for s in &sites {
            assert!(seen.insert(s.hostname), "duplicate {}", s.hostname);
            let parsed: Result<dnswire::DomainName, _> = s.hostname.parse();
            assert!(parsed.is_ok(), "unparseable {}", s.hostname);
        }
    }

    #[test]
    fn named_heavy_hitters_are_present() {
        let sites = build_sites();
        let get = |h: &str| sites.iter().find(|s| s.hostname == h).unwrap();
        assert!(get("www.sina.com.cn").reliability.down_fraction > 0.8);
        assert!(get("www.iitb.ac.in").reliability.replica_flap_fraction >= 0.05);
        assert!(get("www.royal.gov.uk").reliability.replica_flap_fraction >= 0.05);
        assert!(get("www.brazzil.com").reliability.zone_error_fraction > 0.02);
        assert!(get("espn.go.com").reliability.zone_error_fraction > 0.01);
        assert_eq!(get("www.iitb.ac.in").layout.address_count(), 3);
        assert_eq!(get("www.royal.gov.uk").layout.address_count(), 2);
    }

    #[test]
    fn addresses_are_distinct_within_and_across_sites() {
        let sites = build_sites();
        let mut all = HashSet::new();
        for (i, s) in sites.iter().enumerate() {
            let addrs = site_addresses(i, s.layout);
            assert_eq!(addrs.len(), s.layout.address_count() as usize);
            for a in addrs {
                assert!(all.insert(a), "address {a} reused (site {})", s.hostname);
            }
        }
    }

    #[test]
    fn same_subnet_layout_shares_slash24() {
        let addrs = site_addresses(5, ReplicaLayout::MultiSameSubnet { count: 3 });
        let nets: HashSet<_> = addrs
            .iter()
            .map(|a| model::Ipv4Prefix::slash24_of(*a))
            .collect();
        assert_eq!(nets.len(), 1);
        let spread = site_addresses(6, ReplicaLayout::MultiSpread { count: 3 });
        let nets: HashSet<_> = spread
            .iter()
            .map(|a| model::Ipv4Prefix::slash24_of(*a))
            .collect();
        assert_eq!(nets.len(), 3);
    }

    #[test]
    fn redirect_sites_exist() {
        // Enough redirecting sites to lift connections/transaction to ~1.2.
        let sites = build_sites();
        let redirects = sites.iter().filter(|s| s.redirect_hop).count();
        assert!((10..25).contains(&redirects), "{redirects} redirect sites");
    }
}
