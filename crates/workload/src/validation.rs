//! Scoring the paper's inference against the simulator's ground truth.
//!
//! The paper could only validate its blame attribution *indirectly*
//! (Section 4.4.6: spread and co-location similarity). A simulation can do
//! it directly: for every classified failure, check whether the fault the
//! classification implies was actually injected at that instant.

use crate::experiment::ExperimentOutput;
use crate::faults::GroundTruth;
use model::SimTime;
use netprofiler::blame::{classify_hour, BlameClass};
use netprofiler::Analysis;
use std::net::Ipv4Addr;

/// Precision/recall of the client/server attribution.
#[derive(Clone, Debug, Default)]
pub struct AttributionScore {
    /// Failures classified server-side.
    pub server_calls: u64,
    /// ... of those, a server-side fault (degradation or replica flap) was
    /// really active.
    pub server_correct: u64,
    /// Failures classified client-side.
    pub client_calls: u64,
    /// ... of those, the client's WAN was really down.
    pub client_correct: u64,
    /// Failures with a real server fault active (recall denominator).
    pub server_truth: u64,
    /// ... of those, classified server-side or both.
    pub server_found: u64,
    /// Failures with a real client WAN outage active.
    pub client_truth: u64,
    /// ... of those, classified client-side or both.
    pub client_found: u64,
}

impl AttributionScore {
    pub fn server_precision(&self) -> f64 {
        ratio(self.server_correct, self.server_calls)
    }

    pub fn client_precision(&self) -> f64 {
        ratio(self.client_correct, self.client_calls)
    }

    pub fn server_recall(&self) -> f64 {
        ratio(self.server_found, self.server_truth)
    }

    pub fn client_recall(&self) -> f64 {
        ratio(self.client_found, self.client_truth)
    }
}

fn ratio(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64
    }
}

/// Was a server-side fault (group degradation or hard-down flap) active for
/// `replica` at `t`?
pub fn server_fault_active(truth: &GroundTruth, replica: Ipv4Addr, t: SimTime) -> bool {
    let degraded = truth
        .replica_group_of
        .get(&replica)
        .map(|gid| *truth.replica_group_fault[*gid as usize].at(t))
        .unwrap_or(false);
    let flapping = truth
        .replica_hard_down
        .get(&replica)
        .map(|tl| *tl.at(t))
        .unwrap_or(false);
    degraded || flapping
}

/// Score the blame attribution of `analysis` against the run's ground truth.
pub fn score_attribution(out: &ExperimentOutput, analysis: &Analysis<'_>) -> AttributionScore {
    let ds = &out.dataset;
    let truth = &out.truth;
    let f = analysis.config.episode_threshold;
    let min = analysis.config.min_hour_samples;
    let mut score = AttributionScore::default();
    for conn in &ds.connections {
        if !conn.failed() || analysis.permanent.contains(conn.client, conn.site) {
            continue;
        }
        let class = classify_hour(
            &analysis.client_grid,
            &analysis.server_grid,
            conn.client.0 as usize,
            conn.site.0 as usize,
            conn.hour(),
            f,
            min,
        );
        let s_truth = server_fault_active(truth, conn.replica, conn.start);
        let c_truth = *truth.wan[conn.client.0 as usize].at(conn.start);
        match class {
            BlameClass::ServerSide => {
                score.server_calls += 1;
                score.server_correct += u64::from(s_truth);
            }
            BlameClass::ClientSide => {
                score.client_calls += 1;
                score.client_correct += u64::from(c_truth);
            }
            BlameClass::Both | BlameClass::Other => {}
        }
        if s_truth {
            score.server_truth += 1;
            score.server_found += u64::from(matches!(
                class,
                BlameClass::ServerSide | BlameClass::Both
            ));
        }
        if c_truth {
            score.client_truth += 1;
            score.client_found += u64::from(matches!(
                class,
                BlameClass::ClientSide | BlameClass::Both
            ));
        }
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_experiment, ExperimentConfig};
    use netprofiler::AnalysisConfig;

    #[test]
    fn attribution_scores_well_against_ground_truth() {
        let mut cfg = ExperimentConfig::quick(61);
        cfg.hours = 72;
        cfg.wire_fidelity = false;
        let out = run_experiment(&cfg);
        let analysis = Analysis::new(&out.dataset, AnalysisConfig::default());
        let score = score_attribution(&out, &analysis);
        assert!(score.server_calls > 500, "{} server calls", score.server_calls);
        assert!(
            score.server_precision() > 0.9,
            "server precision {}",
            score.server_precision()
        );
        assert!(
            score.server_recall() > 0.5,
            "server recall {}",
            score.server_recall()
        );
        assert!(
            score.client_precision() > 0.5,
            "client precision {}",
            score.client_precision()
        );
    }

    #[test]
    fn empty_score_ratios_are_zero() {
        let s = AttributionScore::default();
        assert_eq!(s.server_precision(), 0.0);
        assert_eq!(s.client_recall(), 0.0);
    }
}
