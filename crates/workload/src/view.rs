//! Per-vantage views over the ground truth.
//!
//! A [`ClientView`] (or [`ProxyView`]) binds one vantage point to the shared
//! immutable [`GroundTruth`] and answers the resolver's and connector's
//! questions. Per-access randomness (does *this* access fail during a
//! degraded episode?) is computed by stateless hashing of
//! `(seed, replica, instant, vantage)`, keeping views `Sync` and the whole
//! experiment deterministic under any thread schedule.

use crate::faults::GroundTruth;
use dnssim::DnsFaults;
use dnswire::DomainName;
use httpsim::Origin;
use model::{DnsErrorCode, FaultSet, SimDuration, SimTime};
use netsim::rng::splitmix64;
use tcpsim::{PathQuality, ServerBehavior};
use webclient::AccessEnvironment;
use std::net::Ipv4Addr;

/// Stateless uniform draw in [0, 1) from a key tuple.
fn hash_unit(seed: u64, tag: u64, a: u64, b: u64, c: u64) -> f64 {
    let mut s = seed ^ tag.rotate_left(17);
    let mut x = splitmix64(&mut s);
    x ^= a.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut s2 = x ^ b.rotate_left(29) ^ c.rotate_left(47);
    let v = splitmix64(&mut s2);
    (v >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Pick an index from a 3-way mix using a unit draw.
fn pick_mix(mix: &[f64; 3], u: f64) -> usize {
    let total: f64 = mix.iter().sum();
    let mut acc = 0.0;
    for (i, w) in mix.iter().enumerate() {
        acc += w / total;
        if u < acc {
            return i;
        }
    }
    2
}

/// Behaviour mix inside a server degradation episode: mostly unanswered
/// SYNs, some accept-but-dead, some mid-transfer stalls — calibrated
/// against Figure 3 (no-connection dominates). Fast RSTs are reserved for
/// the near-permanent blocked pairs: within a degradation episode the
/// coherent-bucket draws would otherwise let wget burn its whole retry
/// budget on instant refusals and flood the client's own hourly rate.
const SERVER_EPISODE_MIX: [f64; 4] = [0.62, 0.0, 0.21, 0.17];

/// Server-fault draws are coherent over this window: a retry (or fail-over
/// to a same-group replica) seconds later sees the same condition, so a
/// degraded access usually fails as a *transaction*, not just as one
/// connection — the burstiness behind the paper's near-equal transaction
/// and connection failure counts.
const SERVER_DRAW_WINDOW_US: u64 = 120 * 1_000_000;

fn episode_behavior(u: f64, index_bytes: u64, stall_u: f64) -> ServerBehavior {
    let mut acc = 0.0;
    for (i, w) in SERVER_EPISODE_MIX.iter().enumerate() {
        acc += w;
        if u < acc {
            return match i {
                0 => ServerBehavior::Unreachable,
                1 => ServerBehavior::Refusing,
                2 => ServerBehavior::AcceptNoResponse,
                _ => ServerBehavior::StallAfter((index_bytes as f64 * stall_u) as u64),
            };
        }
    }
    ServerBehavior::Unreachable
}

/// Ground-truth zone-level DNS fault bits for `host` at `t` (flight
/// recorder). Pure timeline lookups — shared by both vantage kinds.
fn zone_truth(gt: &GroundTruth, host: &DomainName, t: SimTime) -> FaultSet {
    let apex = dnssim::zones::registrable_domain(host);
    let mut s = FaultSet::EMPTY;
    if let Some(tl) = gt.zone_auth_down.get(&apex) {
        if *tl.at(t) {
            s |= FaultSet::AUTH_DNS_DOWN;
        }
    }
    if let Some((tl, _)) = gt.zone_error.get(&apex) {
        if *tl.at(t) {
            s |= FaultSet::ZONE_ERROR;
        }
    }
    s
}

/// Ground-truth server-side fault bits toward `replica` at `t` (flight
/// recorder): hard replica outages and degradation episodes. The episode
/// bit means the fault *condition* was active — whether a particular access
/// failed under it is still the coherent-bucket draw's business.
fn server_truth(gt: &GroundTruth, replica: Ipv4Addr, t: SimTime) -> FaultSet {
    let mut s = FaultSet::EMPTY;
    if let Some(tl) = gt.replica_hard_down.get(&replica) {
        if *tl.at(t) {
            s |= FaultSet::REPLICA_DOWN;
        }
    }
    if let Some(&gid) = gt.replica_group_of.get(&replica) {
        if *gt.replica_group_fault[gid as usize].at(t) {
            s |= FaultSet::SERVER_DEGRADED;
        }
    }
    s
}

/// One measurement client's view of the world.
#[derive(Clone, Copy)]
pub struct ClientView<'g> {
    gt: &'g GroundTruth,
    client: u16,
}

impl<'g> ClientView<'g> {
    pub fn new(gt: &'g GroundTruth, client: u16) -> Self {
        ClientView { gt, client }
    }

    #[allow(clippy::too_many_arguments)]
    fn shared_server_behavior(
        gt: &GroundTruth,
        vantage_salt: u64,
        noise_prob: f64,
        noise_mix: &[f64; 3],
        blocked: bool,
        pair_fail_prob: f64,
        wan_down: bool,
        replica: Ipv4Addr,
        t: SimTime,
    ) -> ServerBehavior {
        if blocked {
            // The paper's near-permanent pairs fail instantly (filtering at
            // the site or the client's network answers with resets), so
            // wget's time budget allows many retries — the mechanism behind
            // their outsized share of connection failures.
            return ServerBehavior::Refusing;
        }
        if wan_down {
            return ServerBehavior::Unreachable;
        }
        // Transiently degraded pair: path-specific trouble, coherent within
        // a transaction like the server draws.
        if pair_fail_prob > 0.0 {
            let bucket = t.as_micros() / SERVER_DRAW_WINDOW_US;
            let u = hash_unit(gt.seed, 0xC1, u64::from(u32::from(replica)), bucket, vantage_salt);
            if u < pair_fail_prob {
                return ServerBehavior::Unreachable;
            }
        }
        // Hard-down flap (spread-site replicas): complete outage.
        if let Some(tl) = gt.replica_hard_down.get(&replica) {
            if *tl.at(t) {
                return ServerBehavior::Unreachable;
            }
        }
        let addr_key = u64::from(u32::from(replica));
        let site = gt.site_of_addr.get(&replica).copied();
        // Server-side degradation episode? Draws are keyed by the fault
        // *group* and a coarse time bucket: retries and same-group replicas
        // share the outcome.
        if let Some(&gid) = gt.replica_group_of.get(&replica) {
            if *gt.replica_group_fault[gid as usize].at(t) {
                let fail_prob = site
                    .map(|s| gt.site_fail_prob[s as usize])
                    .unwrap_or(0.3);
                let bucket = t.as_micros() / SERVER_DRAW_WINDOW_US;
                let u = hash_unit(gt.seed, 0xA1, u64::from(gid), bucket, vantage_salt);
                if u < fail_prob {
                    let u2 = hash_unit(gt.seed, 0xA2, u64::from(gid), bucket, vantage_salt);
                    let stall_u = hash_unit(gt.seed, 0xA3, u64::from(gid), bucket, vantage_salt);
                    let bytes = site
                        .map(|s| gt.site_index_bytes[s as usize])
                        .unwrap_or(20_000);
                    return episode_behavior(u2, bytes, stall_u);
                }
            }
        }
        // Transient background noise.
        let u = hash_unit(gt.seed, 0xB1, addr_key, t.as_micros(), vantage_salt);
        if u < noise_prob {
            let u2 = hash_unit(gt.seed, 0xB2, addr_key, t.as_micros(), vantage_salt);
            let stall_u = hash_unit(gt.seed, 0xB3, addr_key, t.as_micros(), vantage_salt);
            let bytes = site
                .map(|s| gt.site_index_bytes[s as usize])
                .unwrap_or(20_000);
            return match pick_mix(noise_mix, u2) {
                0 => ServerBehavior::Unreachable,
                1 => ServerBehavior::AcceptNoResponse,
                _ => ServerBehavior::StallAfter((bytes as f64 * stall_u) as u64),
            };
        }
        ServerBehavior::Healthy
    }
}

impl DnsFaults for ClientView<'_> {
    fn client_link_up(&self, t: SimTime) -> bool {
        !*self.gt.link[self.client as usize].at(t)
    }

    fn ldns_up(&self, t: SimTime) -> bool {
        !*self.gt.ldns[self.client as usize].at(t)
    }

    fn auth_up(&self, zone_apex: &DomainName, t: SimTime) -> bool {
        // A wide-area outage cuts the LDNS off from every authoritative
        // server; zone-specific outages cut one zone off from everyone.
        if *self.gt.wan[self.client as usize].at(t) {
            return false;
        }
        match self.gt.zone_auth_down.get(zone_apex) {
            Some(tl) => !*tl.at(t),
            None => true,
        }
    }

    fn zone_error(&self, zone_apex: &DomainName, t: SimTime) -> Option<DnsErrorCode> {
        let (tl, code) = self.gt.zone_error.get(zone_apex)?;
        (*tl.at(t)).then_some(*code)
    }

    fn wrong_answer(&self, qname: &DomainName, t: SimTime) -> Option<Ipv4Addr> {
        let apex = dnssim::zones::registrable_domain(qname);
        self.gt.adversarial.wrong_answer(&apex, t)
    }
}

/// Failure probability per access while a CDN regional brownout window is
/// active for the client's region (partial, like a degradation episode).
const BROWNOUT_FAIL_PROB: f64 = 0.65;

/// Bytes after which an MTU-blackholed transfer stalls: the connect and the
/// first small packets get through, the full-size data packets do not.
const MTU_STALL_BYTES: u64 = 1200;

impl AccessEnvironment for ClientView<'_> {
    fn server_behavior(&self, replica: Ipv4Addr, t: SimTime) -> ServerBehavior {
        let c = self.client as usize;
        let adv = &self.gt.adversarial;
        if adv.decoys.contains(&replica) {
            // Wrong-answer DNS: the decoy accepts nothing.
            return ServerBehavior::Unreachable;
        }
        if adv.bgp_transient_at(c, t) {
            // Reconfiguration transient: the client prefix's paths are
            // momentarily violated — like a WAN blip, connects die.
            return ServerBehavior::Unreachable;
        }
        let site = self.gt.site_of_addr.get(&replica);
        if let Some(&site) = site {
            if adv.censored(self.client, site, t) {
                // Censorship blocks like the permanent pairs do: fast resets.
                return ServerBehavior::Refusing;
            }
            if adv.colo_blasted(site, t) {
                return ServerBehavior::Unreachable;
            }
            if adv.vantage_faulted(site, t) {
                // Visible from the direct vantage only (ProxyView skips it).
                return ServerBehavior::AcceptNoResponse;
            }
            if adv.mtu_blackholed(self.client, site, t) {
                let bytes = self.gt.site_index_bytes[site as usize];
                return ServerBehavior::StallAfter(MTU_STALL_BYTES.min(bytes));
            }
            if adv.browning_out_for(site, c, t) {
                // Partial like a degradation episode: coherent draws so a
                // browned access fails as a transaction, not one connect.
                let bucket = t.as_micros() / SERVER_DRAW_WINDOW_US;
                let u = hash_unit(
                    self.gt.seed,
                    0xD1,
                    u64::from(site),
                    bucket,
                    u64::from(self.client),
                );
                if u < BROWNOUT_FAIL_PROB {
                    return ServerBehavior::Unreachable;
                }
            }
        }
        let blocked =
            site.is_some_and(|site| self.gt.blocked.contains(&(self.client, *site)));
        let pair_fail_prob = site
            .and_then(|site| self.gt.degraded_pairs.get(&(self.client, *site)))
            .copied()
            .unwrap_or(0.0);
        let wan_down = *self.gt.wan[c].at(t);
        let p = &self.gt.profile[c];
        Self::shared_server_behavior(
            self.gt,
            u64::from(self.client),
            p.noise_prob,
            &p.noise_mix,
            blocked,
            pair_fail_prob,
            wan_down,
            replica,
            t,
        )
    }

    fn path_quality(&self, replica: Ipv4Addr, t: SimTime) -> PathQuality {
        let p = &self.gt.profile[self.client as usize];
        let penalty = self
            .gt
            .site_of_addr
            .get(&replica)
            .map(|s| self.gt.site_rtt_penalty[*s as usize])
            .unwrap_or(0);
        // Loss breathes a little with time of day (diurnal congestion).
        let hour = t.hour_bin() as f64;
        let diurnal = 1.0 + 0.3 * ((hour % 24.0) / 24.0 * std::f64::consts::TAU).sin();
        PathQuality {
            loss: (p.base_loss * diurnal).clamp(0.0, 0.2),
            rtt: p.base_rtt + SimDuration::from_millis(u64::from(penalty)),
        }
    }

    fn origin(&self, host: &str) -> Option<&Origin> {
        self.gt.origins.get(host)
    }

    fn true_dns_faults(&self, host: &DomainName, t: SimTime) -> FaultSet {
        let c = self.client as usize;
        let mut s = zone_truth(self.gt, host, t);
        if *self.gt.link[c].at(t) {
            s |= FaultSet::LAST_MILE;
        }
        if *self.gt.ldns[c].at(t) {
            s |= FaultSet::LDNS_DOWN;
        }
        if *self.gt.wan[c].at(t) {
            s |= FaultSet::WAN;
        }
        let apex = dnssim::zones::registrable_domain(host);
        if self.gt.adversarial.wrong_answer(&apex, t).is_some() {
            s |= FaultSet::WRONG_DNS;
        }
        s
    }

    fn true_faults(&self, replica: Ipv4Addr, t: SimTime) -> FaultSet {
        let c = self.client as usize;
        let adv = &self.gt.adversarial;
        let mut s = server_truth(self.gt, replica, t);
        if *self.gt.link[c].at(t) {
            s |= FaultSet::LAST_MILE;
        }
        if *self.gt.wan[c].at(t) {
            s |= FaultSet::WAN;
        }
        if adv.bgp_transient_at(c, t) {
            s |= FaultSet::BGP_TRANSIENT;
        }
        if adv.decoys.contains(&replica) {
            s |= FaultSet::WRONG_DNS;
        }
        if let Some(&site) = self.gt.site_of_addr.get(&replica) {
            if self.gt.blocked.contains(&(self.client, site)) {
                s |= FaultSet::BLOCKED_PAIR;
            }
            if self.gt.degraded_pairs.contains_key(&(self.client, site)) {
                s |= FaultSet::DEGRADED_PAIR;
            }
            if adv.censored(self.client, site, t) {
                s |= FaultSet::CENSORED;
            }
            if adv.colo_blasted(site, t) {
                s |= FaultSet::COLO_BLAST;
            }
            if adv.vantage_faulted(site, t) {
                s |= FaultSet::VANTAGE_SPLIT;
            }
            if adv.browning_out_for(site, c, t) {
                s |= FaultSet::CDN_BROWNOUT;
            }
            if adv.mtu_blackholed(self.client, site, t) {
                s |= FaultSet::MTU_BLACKHOLE;
            }
        }
        s
    }
}

/// A corporate proxy's wide-area vantage.
#[derive(Clone, Copy)]
pub struct ProxyView<'g> {
    gt: &'g GroundTruth,
    proxy: u16,
    /// Extra RTT for proxies far from the US (the CHN client's proxy sits
    /// in Japan).
    pub rtt: SimDuration,
}

impl<'g> ProxyView<'g> {
    pub fn new(gt: &'g GroundTruth, proxy: u16) -> Self {
        let rtt = if proxy >= 3 {
            SimDuration::from_millis(120) // UK and CHN-via-Japan proxies
        } else {
            SimDuration::from_millis(40)
        };
        ProxyView { gt, proxy, rtt }
    }
}

impl DnsFaults for ProxyView<'_> {
    fn client_link_up(&self, t: SimTime) -> bool {
        !*self.gt.proxy_link[self.proxy as usize].at(t)
    }

    fn ldns_up(&self, t: SimTime) -> bool {
        !*self.gt.proxy_ldns[self.proxy as usize].at(t)
    }

    fn auth_up(&self, zone_apex: &DomainName, t: SimTime) -> bool {
        match self.gt.zone_auth_down.get(zone_apex) {
            Some(tl) => !*tl.at(t),
            None => true,
        }
    }

    fn zone_error(&self, zone_apex: &DomainName, t: SimTime) -> Option<DnsErrorCode> {
        let (tl, code) = self.gt.zone_error.get(zone_apex)?;
        (*tl.at(t)).then_some(*code)
    }

    fn wrong_answer(&self, qname: &DomainName, t: SimTime) -> Option<Ipv4Addr> {
        // Wrong answers come from the zone itself, so every vantage's
        // resolver picks up the same decoy.
        let apex = dnssim::zones::registrable_domain(qname);
        self.gt.adversarial.wrong_answer(&apex, t)
    }
}

impl AccessEnvironment for ProxyView<'_> {
    fn server_behavior(&self, replica: Ipv4Addr, t: SimTime) -> ServerBehavior {
        // Co-location blasts and decoy addresses hit every vantage; the
        // client-scoped archetypes (censorship, transients, MTU pairs) and
        // the deliberately vantage-split faults do not reach the proxy path.
        if self.gt.adversarial.decoys.contains(&replica) {
            return ServerBehavior::Unreachable;
        }
        if let Some(&site) = self.gt.site_of_addr.get(&replica) {
            if self.gt.adversarial.colo_blasted(site, t) {
                return ServerBehavior::Unreachable;
            }
        }
        ClientView::shared_server_behavior(
            self.gt,
            0x5000 + u64::from(self.proxy),
            0.0008,
            &[0.7, 0.18, 0.12],
            false,
            0.0,
            false,
            replica,
            t,
        )
    }

    fn path_quality(&self, replica: Ipv4Addr, t: SimTime) -> PathQuality {
        let penalty = self
            .gt
            .site_of_addr
            .get(&replica)
            .map(|s| self.gt.site_rtt_penalty[*s as usize])
            .unwrap_or(0);
        let _ = t;
        PathQuality {
            loss: 0.004,
            rtt: self.rtt + SimDuration::from_millis(u64::from(penalty)),
        }
    }

    fn origin(&self, host: &str) -> Option<&Origin> {
        self.gt.origins.get(host)
    }

    fn true_dns_faults(&self, host: &DomainName, t: SimTime) -> FaultSet {
        let p = self.proxy as usize;
        let mut s = zone_truth(self.gt, host, t);
        if *self.gt.proxy_link[p].at(t) {
            s |= FaultSet::PROXY_LINK;
        }
        if *self.gt.proxy_ldns[p].at(t) {
            s |= FaultSet::PROXY_LDNS;
        }
        let apex = dnssim::zones::registrable_domain(host);
        if self.gt.adversarial.wrong_answer(&apex, t).is_some() {
            s |= FaultSet::WRONG_DNS;
        }
        s
    }

    fn true_faults(&self, replica: Ipv4Addr, t: SimTime) -> FaultSet {
        let mut s = server_truth(self.gt, replica, t);
        if self.gt.adversarial.decoys.contains(&replica) {
            s |= FaultSet::WRONG_DNS;
        }
        if let Some(&site) = self.gt.site_of_addr.get(&replica) {
            if self.gt.adversarial.colo_blasted(site, t) {
                s |= FaultSet::COLO_BLAST;
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clients::build_fleet;
    use crate::sites::{build_sites, site_addresses};
    use model::ClientCategory;

    fn world() -> (crate::clients::FleetSpec, Vec<crate::sites::SiteSpec>, GroundTruth) {
        let fleet = build_fleet();
        let sites = build_sites();
        let gt = GroundTruth::materialize(&fleet, &sites, 168, 11);
        (fleet, sites, gt)
    }

    #[test]
    fn hash_unit_is_deterministic_and_uniformish() {
        let a = hash_unit(1, 2, 3, 4, 5);
        let b = hash_unit(1, 2, 3, 4, 5);
        assert_eq!(a, b);
        assert!((0.0..1.0).contains(&a));
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|i| hash_unit(7, 1, i, i * 3 + 1, 9))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn pick_mix_respects_weights() {
        let mix = [0.5, 0.3, 0.2];
        let mut counts = [0usize; 3];
        let n = 30_000;
        for i in 0..n {
            let u = hash_unit(3, 9, i, 0, 0);
            counts[pick_mix(&mix, u)] += 1;
        }
        for (i, &w) in mix.iter().enumerate() {
            let freq = counts[i] as f64 / n as f64;
            assert!((freq - w).abs() < 0.02, "bucket {i}: {freq} vs {w}");
        }
    }

    #[test]
    fn blocked_pair_refuses_forever() {
        let (_, sites, gt) = world();
        let (client, site) = *gt.blocked.iter().next().unwrap();
        let view = ClientView::new(&gt, client);
        let addrs = site_addresses(site as usize, sites[site as usize].layout);
        for h in [0u64, 50, 100] {
            assert_eq!(
                view.server_behavior(addrs[0], SimTime::from_hours(h)),
                ServerBehavior::Refusing,
                "blocked pairs fail fast with resets"
            );
        }
        // Another client is not blocked on that site (almost surely).
        let other = (0..134u16)
            .find(|c| !gt.blocked.contains(&(*c, site)))
            .unwrap();
        let other_view = ClientView::new(&gt, other);
        // At *some* instant the replica behaves healthily for the other
        // client (unless the site is one of the always-degraded ones).
        let mut any_healthy = false;
        for h in 0..168u64 {
            if other_view.server_behavior(addrs[0], SimTime::from_hours(h))
                == ServerBehavior::Healthy
            {
                any_healthy = true;
                break;
            }
        }
        let hostname = sites[site as usize].hostname;
        if !["www.sina.com.cn", "www.iitb.ac.in"].contains(&hostname) {
            assert!(any_healthy, "{hostname} never healthy for unblocked client");
        }
    }

    #[test]
    fn degraded_site_fails_a_calibrated_fraction() {
        let (_, sites, gt) = world();
        let si = sites
            .iter()
            .position(|s| s.hostname == "www.sina.com.cn")
            .unwrap();
        let addr = site_addresses(si, sites[si].layout)[0];
        let view = ClientView::new(&gt, 20);
        // Sample many instants inside degraded periods.
        let gid = gt.replica_group_of[&addr];
        let tl = &gt.replica_group_fault[gid as usize];
        let mut degraded_samples = 0;
        let mut failures = 0;
        for k in 0..40_000u64 {
            let t = SimTime::from_micros(k * gt.horizon.as_micros() / 40_000);
            if !*tl.at(t) {
                continue;
            }
            degraded_samples += 1;
            if view.server_behavior(addr, t) != ServerBehavior::Healthy {
                failures += 1;
            }
        }
        assert!(degraded_samples > 1_000, "sina degraded often");
        let rate = failures as f64 / degraded_samples as f64;
        let expect = sites[si].reliability.episode_fail_prob;
        assert!(
            (rate - expect).abs() < 0.05,
            "episode fail rate {rate} vs {expect}"
        );
    }

    #[test]
    fn wan_outage_blocks_servers_and_auth() {
        let (fleet, sites, gt) = world();
        // Find a client with some WAN downtime in the window.
        let idx = (0..fleet.len())
            .find(|&i| {
                gt.wan[i].micros_matching(SimTime::ZERO, gt.horizon, |s| *s) > 0
            })
            .expect("some client has WAN trouble");
        let tl = &gt.wan[idx];
        let (start, end, _) = tl
            .segments()
            .find(|(_, _, s)| **s)
            .expect("has a down segment");
        let mid = SimTime::from_micros(
            (start.as_micros() + end.unwrap_or(gt.horizon).as_micros()) / 2,
        );
        let view = ClientView::new(&gt, idx as u16);
        let addr = site_addresses(0, sites[0].layout)[0];
        assert_eq!(view.server_behavior(addr, mid), ServerBehavior::Unreachable);
        let apex: DomainName = "example.com".parse().unwrap();
        assert!(!view.auth_up(&apex, mid));
    }

    #[test]
    fn proxy_view_is_well_connected() {
        let (_, sites, gt) = world();
        let view = ProxyView::new(&gt, 0);
        let addr = site_addresses(0, sites[0].layout)[0];
        let mut healthy = 0;
        let mut total = 0;
        for h in 0..168u64 {
            total += 1;
            if view.server_behavior(addr, SimTime::from_hours(h)) == ServerBehavior::Healthy {
                healthy += 1;
            }
        }
        assert!(healthy * 100 / total >= 95, "{healthy}/{total}");
        // Far-east proxy has higher RTT.
        assert!(ProxyView::new(&gt, 4).rtt > ProxyView::new(&gt, 0).rtt);
    }

    #[test]
    fn dialup_rtt_exceeds_planetlab() {
        let (fleet, sites, gt) = world();
        let pl = fleet
            .clients
            .iter()
            .position(|c| c.category == ClientCategory::PlanetLab)
            .unwrap();
        let du = fleet
            .clients
            .iter()
            .position(|c| c.category == ClientCategory::Dialup)
            .unwrap();
        let addr = site_addresses(0, sites[0].layout)[0];
        let t = SimTime::from_hours(5);
        let pl_q = ClientView::new(&gt, pl as u16).path_quality(addr, t);
        let du_q = ClientView::new(&gt, du as u16).path_quality(addr, t);
        assert!(du_q.rtt > pl_q.rtt);
    }

    #[test]
    fn intl_sites_are_farther() {
        let (_, sites, gt) = world();
        let us = sites
            .iter()
            .position(|s| s.category == model::SiteCategory::UsEdu)
            .unwrap();
        let intl = sites
            .iter()
            .position(|s| s.category == model::SiteCategory::IntlEdu)
            .unwrap();
        let view = ClientView::new(&gt, 0);
        let t = SimTime::from_hours(1);
        let us_rtt = view
            .path_quality(site_addresses(us, sites[us].layout)[0], t)
            .rtt;
        let intl_rtt = view
            .path_quality(site_addresses(intl, sites[intl].layout)[0], t)
            .rtt;
        assert!(intl_rtt > us_rtt);
    }
}
