//! BGP churn vs end-to-end failures (the paper's Section 4.6).
//!
//! Prints the Figure 5-style time series for the howard.edu-like showcase
//! client (TCP attempts/failures/streaks against the withdrawal activity of
//! its prefix), the low-visibility kscy case of Figure 7, and the severe-
//! instability correlation summary.
//!
//! ```text
//! cargo run --release --example bgp_correlation
//! ```

use netprofiler::bgp_corr::client_timeseries;
use netprofiler::{Analysis, AnalysisConfig};
use report::render;
use workload::{run_experiment, ExperimentConfig};

fn main() {
    let mut config = ExperimentConfig::quick(23);
    config.hours = 168; // a week: enough for several WAN outages
    println!("simulating {} hours ...", config.hours);
    let out = run_experiment(&config);
    let ds = &out.dataset;
    let analysis = Analysis::new(ds, AnalysisConfig::default());

    println!("{}", render::render_bgp(&analysis));

    for (label, needle) in [
        ("Figure 5 — severe, wide-visibility withdrawals (howard-like)", "howard"),
        ("Figure 7 — 2-neighbor withdrawals, still devastating (kscy-like)", "kscy"),
    ] {
        let client = ds
            .clients
            .iter()
            .find(|c| c.name.contains(needle))
            .expect("showcase client exists");
        let ts = client_timeseries(ds, client.id);
        println!("\n{label}: {}", client.name);
        println!("hour  attempts  failures  streak  withdrawals  neighbors");
        let mut shown = 0;
        for h in 0..ts.attempts.len() {
            let interesting = ts.failures[h] > 0 || ts.withdrawals[h] > 0;
            if !interesting {
                continue;
            }
            println!(
                "{:>4}  {:>8}  {:>8}  {:>6}  {:>11}  {:>9}",
                h,
                ts.attempts[h],
                ts.failures[h],
                ts.longest_streak[h],
                ts.withdrawals[h],
                ts.neighbors_withdrawing[h]
            );
            shown += 1;
            if shown > 40 {
                println!("...");
                break;
            }
        }
        // The paper's observation: heavy BGP withdrawal hours coincide with
        // long consecutive-failure streaks.
        let heavy: Vec<usize> = (0..ts.attempts.len())
            .filter(|&h| ts.neighbors_withdrawing[h] >= 50 && ts.attempts[h] >= 12)
            .collect();
        if !heavy.is_empty() {
            let mean_rate: f64 = heavy
                .iter()
                .map(|&h| f64::from(ts.failures[h]) / f64::from(ts.attempts[h].max(1)))
                .sum::<f64>()
                / heavy.len() as f64;
            println!(
                "mean TCP failure rate in ≥50-neighbor withdrawal hours: {:.0}%  ({} hours)",
                mean_rate * 100.0,
                heavy.len()
            );
        }
    }
}
