//! Blame attribution walkthrough: the paper's novel cross-client
//! correlation analysis, validated against the simulator's ground truth.
//!
//! This example runs a medium experiment, classifies every TCP connection
//! failure as client-side / server-side / both / other, and then does what
//! the paper could not: checks the attribution against the known fault
//! injections (was the server's fault group really active? was the client's
//! WAN really down?).
//!
//! ```text
//! cargo run --release --example blame_attribution
//! ```

use model::SimTime;
use netprofiler::blame::{classify_hour, BlameClass};
use netprofiler::{Analysis, AnalysisConfig};
use report::render;
use workload::{run_experiment, ExperimentConfig};

fn main() {
    let mut config = ExperimentConfig::quick(11);
    config.hours = 96;
    println!("simulating {} hours ...", config.hours);
    let out = run_experiment(&config);
    let ds = &out.dataset;
    let truth = &out.truth;

    let a5 = Analysis::new(ds, AnalysisConfig::default());
    let a10 = Analysis::new(ds, AnalysisConfig::conservative());
    println!("{}", render::render_table5(&a5, &a10));
    println!("{}", render::render_episode_stats(&a5));
    println!("{}", render::render_table6(&a5, 10));

    // --- Ground-truth validation -------------------------------------------
    // For each failure the framework called "server-side", check whether
    // the simulator really had a server-side fault active (degradation
    // episode, replica flap) — and, for "client-side", whether the client's
    // WAN was really down. The paper could only validate indirectly
    // (Section 4.4.6); a simulation can score the inference exactly.
    let f = a5.config.episode_threshold;
    let min = a5.config.min_hour_samples;
    let mut server_calls = 0u64;
    let mut server_correct = 0u64;
    let mut client_calls = 0u64;
    let mut client_correct = 0u64;
    for conn in &ds.connections {
        if !conn.failed() || a5.permanent.contains(conn.client, conn.site) {
            continue;
        }
        let class = classify_hour(
            &a5.client_grid,
            &a5.server_grid,
            conn.client.0 as usize,
            conn.site.0 as usize,
            conn.hour(),
            f,
            min,
        );
        let t = conn.start;
        let server_truth = server_fault_active(truth, conn.replica, t);
        let client_truth = *truth.wan[conn.client.0 as usize].at(t);
        match class {
            BlameClass::ServerSide => {
                server_calls += 1;
                server_correct += u64::from(server_truth);
            }
            BlameClass::ClientSide => {
                client_calls += 1;
                client_correct += u64::from(client_truth);
            }
            _ => {}
        }
    }
    println!("ground-truth validation of the attribution:");
    println!(
        "  server-side calls: {server_calls}, with a real server fault active: {:.1}%",
        pct(server_correct, server_calls)
    );
    println!(
        "  client-side calls: {client_calls}, with the client's WAN really down: {:.1}%",
        pct(client_correct, client_calls)
    );
    println!(
        "\n(the residue is the paper's caveat in Section 2.2: the categorization\n\
         is suggestive of location, not proof — e.g. transient noise that\n\
         happens to fall inside a flagged hour inherits its label)"
    );
}

fn server_fault_active(truth: &workload::GroundTruth, replica: std::net::Ipv4Addr, t: SimTime) -> bool {
    let degraded = truth
        .replica_group_of
        .get(&replica)
        .map(|gid| *truth.replica_group_fault[*gid as usize].at(t))
        .unwrap_or(false);
    let flapping = truth
        .replica_hard_down
        .get(&replica)
        .map(|tl| *tl.at(t))
        .unwrap_or(false);
    degraded || flapping
}

fn pct(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64 * 100.0
    }
}
