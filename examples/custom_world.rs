//! Building your own measurement world with the public APIs.
//!
//! The `workload` crate ships the paper's exact fleet and site list, but
//! every layer is usable on its own. This example builds a small custom
//! world from scratch — three sites with different fault behaviours, eight
//! clients at two offices — runs a week of accesses through the real
//! client/resolver/TCP machinery, and analyzes the result with the
//! `netprofiler` framework.
//!
//! ```text
//! cargo run --release --example custom_world
//! ```

use dnssim::{DnsFaults, ZoneTree};
use dnswire::DomainName;
use httpsim::Origin;
use model::{
    BgpHourlySeries, ClientCategory, ClientId, ClientMeta, ConnectionRecord, Dataset, Ipv4Prefix,
    PerformanceRecord, PrefixId, SimDuration, SimTime, SiteCategory, SiteId, SiteMeta,
};
use netsim::process::EpisodeDuration;
use netsim::{OnOffProcess, SimRng, Timeline};
use tcpsim::{PathQuality, ServerBehavior};
use webclient::{AccessEnvironment, ClientSession, WgetConfig};
use std::net::Ipv4Addr;

const HOURS: u32 = 168;

/// Our custom world: one flaky site that *degrades* (a third of accesses
/// fail while its fault process is active), a shared wide-area outage
/// process for office B (its uplink drops and every server becomes
/// unreachable, while cached DNS keeps resolving), and ten steady sites so
/// one site's trouble does not drown a client's hourly aggregate.
struct OfficeWorld {
    origins: Vec<Origin>,
    flaky_site: Timeline<bool>,
    office_b_link: Timeline<bool>,
    office_b: bool,
    flaky_addr: Ipv4Addr,
}

impl DnsFaults for OfficeWorld {}

impl AccessEnvironment for OfficeWorld {
    fn server_behavior(&self, replica: Ipv4Addr, t: SimTime) -> ServerBehavior {
        if self.office_b && *self.office_b_link.at(t) {
            // Office B's uplink is down: nothing answers.
            return ServerBehavior::Unreachable;
        }
        if replica == self.flaky_addr && *self.flaky_site.at(t) {
            // Degraded, not dead: ~a third of accesses fail (stateless
            // hash keyed by a coarse time bucket, as the workload does).
            let mut state = 0xD1CE ^ (t.as_micros() / 120_000_000);
            let draw =
                (netsim::rng::splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
            if draw < 0.33 {
                return ServerBehavior::Unreachable;
            }
        }
        ServerBehavior::Healthy
    }

    fn path_quality(&self, _replica: Ipv4Addr, _t: SimTime) -> PathQuality {
        PathQuality {
            loss: 0.004,
            rtt: SimDuration::from_millis(60),
        }
    }

    fn origin(&self, host: &str) -> Option<&Origin> {
        self.origins.iter().find(|o| o.host.eq_ignore_ascii_case(host))
    }
}

fn main() {
    // --- Topology -----------------------------------------------------------
    let mut hosts: Vec<(DomainName, Vec<Ipv4Addr>)> = vec![
        ("www.flaky.example".parse().unwrap(), vec![Ipv4Addr::new(203, 0, 113, 10)]),
        ("www.far.example".parse().unwrap(), vec![Ipv4Addr::new(192, 0, 2, 10)]),
    ];
    let mut origins = vec![
        Origin::simple("www.flaky.example", 22_000),
        Origin::simple("www.far.example", 18_000),
    ];
    for i in 0..10u8 {
        let name: DomainName = format!("www.steady{i}.example").parse().unwrap();
        hosts.push((name, vec![Ipv4Addr::new(198, 51, 100, 10 + i)]));
        origins.push(Origin::simple(&format!("www.steady{i}.example"), 30_000));
    }
    let tree = ZoneTree::build_for_hosts(&hosts);

    // --- Fault processes ------------------------------------------------------
    let rng = SimRng::new(99);
    let horizon = SimTime::from_hours(u64::from(HOURS));
    let flaky_site = OnOffProcess::new(
        SimDuration::from_hours(20),
        EpisodeDuration::Exp { mean: SimDuration::from_secs(50 * 60) },
    )
    .materialize(&mut rng.fork(1), horizon);
    let office_b_link = OnOffProcess::new(
        SimDuration::from_hours(60),
        EpisodeDuration::Exp { mean: SimDuration::from_secs(25 * 60) },
    )
    .materialize(&mut rng.fork(2), horizon);

    // --- Run eight clients ------------------------------------------------------
    let mut records: Vec<PerformanceRecord> = Vec::new();
    let mut connections: Vec<ConnectionRecord> = Vec::new();
    for client in 0..8u16 {
        let office_b = client >= 4;
        let env = OfficeWorld {
            origins: origins.clone(),
            flaky_site: flaky_site.clone(),
            office_b_link: office_b_link.clone(),
            office_b,
            flaky_addr: hosts[0].1[0],
        };
        let mut session = ClientSession::new(&tree, WgetConfig::default(), rng.fork(100 + u64::from(client)));
        let mut lrng = rng.fork(200 + u64::from(client));
        for hour in 0..HOURS {
            // Two accesses of each of the 12 sites per hour: hourly rates
            // are meaningful at the default 12-sample floor.
            for k in 0..2u64 {
                for (si, (host, _)) in hosts.iter().enumerate() {
                let t = SimTime::from_hours(u64::from(hour))
                    + SimDuration::from_secs(k * 1_800 + lrng.below(1_500));
                let obs = session.run_transaction(&env, host, t);
                for c in &obs.connections {
                    connections.push(ConnectionRecord {
                        client: ClientId(client),
                        site: SiteId(si as u16),
                        replica: c.replica,
                        start: c.start,
                        outcome: c.outcome,
                        syn_retransmissions: c.syn_retransmissions,
                        retransmissions: c.retransmissions,
                    });
                }
                records.push(PerformanceRecord {
                    client: ClientId(client),
                    site: SiteId(si as u16),
                    replica: obs.replica,
                    start: obs.start,
                    dns: obs.dns,
                    outcome: obs.outcome,
                    download_time: obs.download_time,
                    bytes_received: obs.bytes_received,
                    connections_attempted: obs.connections.len() as u16,
                    retransmissions: obs.retransmissions,
                    dig: obs.dig,
                    proxy: None,
                });
                }
            }
        }
    }

    // --- Assemble a Dataset and analyze ----------------------------------------
    let clients = (0..8u16)
        .map(|i| ClientMeta {
            id: ClientId(i),
            name: format!("office-{}-{}", if i < 4 { "a" } else { "b" }, i),
            category: ClientCategory::CorpNet,
            colocation: Some(u16::from(i >= 4)),
            proxy: None,
            prefixes: vec![PrefixId(u32::from(i >= 4))],
            addr: Ipv4Addr::new(10, u8::from(i >= 4), 0, 10 + i as u8),
        })
        .collect();
    let sites = hosts
        .iter()
        .enumerate()
        .map(|(i, (host, addrs))| SiteMeta {
            id: SiteId(i as u16),
            hostname: host.to_string(),
            category: SiteCategory::UsMisc,
            addrs: addrs.clone(),
            replica_prefixes: addrs
                .iter()
                .map(|a| (*a, vec![PrefixId(2 + (i as u32).min(2))]))
                .collect(),
        })
        .collect();
    let prefixes: Vec<Ipv4Prefix> = vec![
        "10.0.0.0/24".parse().unwrap(),
        "10.1.0.0/24".parse().unwrap(),
        "203.0.113.0/24".parse().unwrap(),
        "192.0.2.0/24".parse().unwrap(),
        "198.51.100.0/24".parse().unwrap(),
    ];
    let ds = Dataset {
        hours: HOURS,
        clients,
        sites,
        records,
        connections,
        prefixes,
        bgp: BgpHourlySeries::new(5, HOURS),
    };

    println!(
        "custom world: {} transactions, {} connections, overall failure rate {:.2}%\n",
        ds.records.len(),
        ds.connections.len(),
        ds.overall_failure_rate() * 100.0
    );
    let analysis = netprofiler::Analysis::with_defaults(&ds);
    let blame = netprofiler::blame::table5(&analysis);
    println!(
        "blame: server-side {:.0}%, client-side {:.0}%, both {:.1}%, other {:.0}%",
        blame.share(netprofiler::BlameClass::ServerSide) * 100.0,
        blame.share(netprofiler::BlameClass::ClientSide) * 100.0,
        blame.share(netprofiler::BlameClass::Both) * 100.0,
        blame.share(netprofiler::BlameClass::Other) * 100.0,
    );
    println!(
        "note: with only 8 clients, office B's outages lift every *server's*
         hourly aggregate too, so those failures land in 'both' — the paper's
         Section 2.2 caveat about small populations, visible by construction.
         The flaky site's own failures classify cleanly as server-side."
    );
    // The flaky site should top the server-side episode list.
    let spread = netprofiler::spread::table6(&analysis);
    println!("\nserver-side episode hours by site:");
    for row in &spread {
        println!(
            "  {:<20} {:>4} h  spread {:.0}%",
            ds.site(row.site).hostname,
            row.episode_hours,
            row.spread() * 100.0
        );
    }
    // Office B's shared link trouble shows up as co-located similarity.
    let pairs = netprofiler::similarity::colocated_similarities(&analysis);
    let b_pairs: Vec<_> = pairs
        .iter()
        .filter(|p| ds.client(p.a).colocation == Some(1))
        .collect();
    let a_pairs: Vec<_> = pairs
        .iter()
        .filter(|p| ds.client(p.a).colocation == Some(0))
        .collect();
    let mean = |v: &[&netprofiler::similarity::PairSimilarity]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().map(|p| p.similarity()).sum::<f64>() / v.len() as f64
        }
    };
    println!(
        "\nco-located client-side similarity: office A {:.0}%, office B {:.0}%",
        mean(&a_pairs) * 100.0,
        mean(&b_pairs) * 100.0
    );
    println!("(office B shares a faulty uplink; office A's episodes are independent noise)");
}
