//! Degraded run: the same measurement month as `quickstart`, but on flaky
//! apparatus — nodes die mid-month, ~1% of records are lost in collection,
//! and the BGP feed arrives corrupted and must be salvage-decoded. The run
//! completes anyway, accounts for every loss, and the analysis says how
//! much of the grid it still trusts.
//!
//! ```text
//! cargo run --release --example degraded_run
//! ```

use netprofiler::{integrity, Analysis};
use report::render;
use workload::{run_experiment, ApparatusFaults, ExperimentConfig};

fn main() {
    let mut config = ExperimentConfig::quick(7);
    config.hours = 48;
    config.apparatus = ApparatusFaults::stress();
    println!(
        "simulating {} hours on deliberately flaky apparatus (p_death={}, p_drop={}, corrupted BGP feed) ...\n",
        config.hours, config.apparatus.client_death_prob, config.apparatus.record_drop_prob
    );
    let out = run_experiment(&config);

    // What the apparatus lost, and what salvage saved.
    print!("{}", out.report.quarantine_summary().render());

    // The dataset's own audit agrees with the runner's accounting.
    let audit = out.dataset.integrity();
    println!(
        "\nintegrity: {}/{} client-hour cells covered ({:.1}%), {} clients missing, {} partial",
        audit.covered_cells,
        audit.total_cells,
        100.0 * audit.coverage(),
        audit.missing_clients.len(),
        audit.partial_clients.len()
    );

    // The headline table still computes from what survived.
    let a = Analysis::with_defaults(&out.dataset);
    println!("\n{}", render::render_table3(&a.cds));

    let deg = a.degradation();
    println!(
        "analysis cells: client grid {} active / {} thin, server grid {} active / {} thin",
        deg.client_cells.active, deg.client_cells.thin, deg.server_cells.active, deg.server_cells.thin
    );
    let confident = integrity::table5_with_confidence(&a);
    println!(
        "blame attributions: {} total, {} on thin data ({:.1}% confident)",
        confident.breakdown.total(),
        confident.low_confidence,
        100.0 * confident.confident_share()
    );
}
