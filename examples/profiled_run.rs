//! Profiled run: the same simulated measurement month as `quickstart`, but
//! with the telemetry recorder on. Prints the stage summary and writes a
//! Chrome-trace-format file (open it in `about:tracing` or
//! <https://ui.perfetto.dev>) with spans from all three layers: the
//! simulator (`workload.*`), the protocol stack (`client.transaction`,
//! sampled 1-in-1024), and every analysis stage (`analysis.*`).
//!
//! ```text
//! cargo run --release --example profiled_run
//! ```

use netprofiler::{blame, summary, Analysis, AnalysisConfig};
use workload::{run_experiment, ExperimentConfig};

fn main() {
    telemetry::enable(true);
    telemetry::reset();

    let mut config = ExperimentConfig::quick(42);
    config.hours = 24;
    println!("simulating {} hours with telemetry on ...", config.hours);
    let out = run_experiment(&config);

    // Run a representative slice of the analysis pipeline so its stage
    // spans land in the trace too.
    let a = Analysis::new(&out.dataset, AnalysisConfig::default());
    let t3 = summary::table3(&model::ColumnarDataset::from_dataset(&out.dataset));
    let t5 = blame::table5(&a);
    println!(
        "{} transactions across {} categories; blame classified {} episode failures",
        out.dataset.records.len(),
        t3.len(),
        t5.total()
    );

    let snap = telemetry::snapshot();
    telemetry::enable(false);

    // The run report carries the same summary the recorder renders.
    if let Some(s) = &out.report.telemetry_summary {
        println!("\n{s}");
    }

    // Every layer must have produced spans, or the trace is not worth
    // looking at — fail loudly instead of writing an empty file.
    for (layer, name) in [
        ("simulator", "workload.client_month"),
        ("protocol", "client.transaction"),
        ("analysis", "analysis.index"),
    ] {
        assert!(
            snap.span_count(name) > 0,
            "no {layer} spans ({name}) in the trace"
        );
    }

    let path = std::path::Path::new("target/profiled_run.trace.json");
    std::fs::create_dir_all(path.parent().unwrap()).expect("create target/");
    std::fs::write(path, snap.to_chrome_trace()).expect("write trace");
    println!(
        "wrote {} ({} spans; {} dropped) — load it in about:tracing",
        path.display(),
        snap.spans.len(),
        snap.spans_dropped
    );
}
