//! The Section 4.7 proxy defect, demonstrated mechanistically.
//!
//! A website with three replicas, one of which flaps: a direct wget fails
//! over across the A records and nearly always succeeds, while a caching
//! proxy connects to the first resolved address only and fails whenever DNS
//! round-robin hands it the dead replica. This is the mechanism behind the
//! paper's Table 9 (iitb.ac.in / royal.gov.uk residual failures).
//!
//! ```text
//! cargo run --release --example proxy_failover
//! ```

use dnssim::{DnsFaults, ZoneTree};
use httpsim::Origin;
use model::{SimDuration, SimTime};
use netsim::process::EpisodeDuration;
use netsim::{OnOffProcess, SimRng, Timeline};
use tcpsim::{PathQuality, ServerBehavior};
use webclient::{AccessEnvironment, ClientSession, ProxyFetch, ProxySession, WgetConfig};
use std::net::Ipv4Addr;

/// A world with one 3-replica site whose first replica flaps.
struct FlappyReplica {
    origin: Origin,
    flap: Timeline<bool>,
    victim: Ipv4Addr,
}

impl DnsFaults for FlappyReplica {}

impl AccessEnvironment for FlappyReplica {
    fn server_behavior(&self, replica: Ipv4Addr, t: SimTime) -> ServerBehavior {
        if replica == self.victim && *self.flap.at(t) {
            ServerBehavior::Unreachable
        } else {
            ServerBehavior::Healthy
        }
    }

    fn path_quality(&self, _replica: Ipv4Addr, _t: SimTime) -> PathQuality {
        PathQuality {
            loss: 0.002,
            rtt: SimDuration::from_millis(120),
        }
    }

    fn origin(&self, host: &str) -> Option<&Origin> {
        self.origin.host.eq_ignore_ascii_case(host).then_some(&self.origin)
    }
}

fn main() {
    let host: dnswire::DomainName = "www.iitb.ac.in".parse().expect("valid");
    let replicas = vec![
        Ipv4Addr::new(203, 0, 113, 10),
        Ipv4Addr::new(198, 51, 100, 10),
        Ipv4Addr::new(192, 0, 2, 10),
    ];
    let tree = ZoneTree::build_for_hosts(&[(host.clone(), replicas.clone())]);

    // The first replica is down ~20% of the time in 10-minute flaps.
    let mut rng = SimRng::new(2005);
    let flap = OnOffProcess::new(
        SimDuration::from_secs(40 * 60),
        EpisodeDuration::Exp {
            mean: SimDuration::from_secs(10 * 60),
        },
    )
    .materialize(&mut rng, SimTime::from_hours(400));
    let env = FlappyReplica {
        origin: Origin::simple("www.iitb.ac.in", 19_000),
        flap,
        victim: replicas[0],
    };

    let mut direct = ClientSession::new(&tree, WgetConfig::default(), SimRng::new(1));
    let mut proxy = ProxySession::new(Default::default(), SimRng::new(2));

    let accesses = 2_000u64;
    let mut direct_fail = 0u64;
    let mut direct_extra_conns = 0u64;
    let mut proxy_fail = 0u64;
    for k in 0..accesses {
        let t = SimTime::from_secs(k * 600); // every 10 minutes
        let obs = direct.run_transaction(&env, &host, t);
        direct_fail += u64::from(obs.outcome.is_failure());
        direct_extra_conns += obs.connections.len().saturating_sub(1) as u64;

        match proxy.fetch(&env, &tree, &host, t, true) {
            ProxyFetch::Success { .. } => {}
            _ => proxy_fail += 1,
        }
    }

    let down_frac = env
        .flap
        .micros_matching(SimTime::ZERO, SimTime::from_hours(400), |s| *s) as f64
        / SimTime::from_hours(400).as_micros() as f64;
    println!("replica 1 of 3 is hard-down {:.1}% of the time (10-minute flaps)", down_frac * 100.0);
    println!("{accesses} accesses each:");
    println!(
        "  direct wget : {:>5} failures ({:.2}%) — fail-over used {} extra connections",
        direct_fail,
        direct_fail as f64 / accesses as f64 * 100.0,
        direct_extra_conns
    );
    println!(
        "  via proxy   : {:>5} failures ({:.2}%) — no fail-over, pays the full flap rate / 3",
        proxy_fail,
        proxy_fail as f64 / accesses as f64 * 100.0
    );
    println!(
        "\nthe proxy's failure rate tracks down-fraction/replicas ≈ {:.2}%,\n\
         while wget only fails on (rare) coincident outages — the paper's\n\
         Table 9 contrast between the CN clients and everyone else.",
        down_frac / 3.0 * 100.0
    );
}
