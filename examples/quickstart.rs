//! Quickstart: run a small simulated measurement and print the headline
//! failure statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use netprofiler::{blame, summary, Analysis, AnalysisConfig};
use report::render;
use workload::{run_experiment, ExperimentConfig};

fn main() {
    // A 48-hour experiment with the full 134-client fleet and 80 sites.
    let mut config = ExperimentConfig::quick(7);
    config.hours = 48;
    println!(
        "simulating {} hours x {} access/hour x 80 sites x 134 clients ...",
        config.hours, config.iterations_per_hour
    );
    let out = run_experiment(&config);
    let ds = &out.dataset;
    println!(
        "done: {} transactions, {} TCP connections\n",
        ds.records.len(),
        ds.connections.len()
    );

    // Overall failure statistics (Table 3 / Figure 1), computed over the
    // columnar view the analysis indexes once.
    let analysis = Analysis::new(ds, AnalysisConfig::default());
    println!("{}", render::render_table3(&analysis.cds));
    println!("{}", render::render_figure1(&analysis.cds));

    // The paper's headline: failures are rare but non-negligible, DNS is a
    // third of them, and server-side problems dominate the TCP side.
    let b = summary::overall_breakdown(&analysis.cds);
    println!(
        "failure mix: DNS {:.0}%, TCP {:.0}%, HTTP {:.1}%",
        b.dns_share() * 100.0,
        b.tcp_share() * 100.0,
        b.http_share() * 100.0
    );

    let t5 = blame::table5(&analysis);
    println!(
        "blame attribution (f=5%): server-side {:.0}%, client-side {:.0}%, both {:.1}%, other {:.0}%",
        t5.share(blame::BlameClass::ServerSide) * 100.0,
        t5.share(blame::BlameClass::ClientSide) * 100.0,
        t5.share(blame::BlameClass::Both) * 100.0,
        t5.share(blame::BlameClass::Other) * 100.0,
    );
}
