//! Umbrella crate for the end-to-end web access failure study.
//!
//! Re-exports the workspace's public surface so examples and integration
//! tests can depend on one crate:
//!
//! * [`model`] — shared vocabulary (time, ids, failure taxonomy, records);
//! * [`netsim`] — deterministic DES engine, RNG, fault processes;
//! * [`dnswire`] / [`dnssim`] — RFC 1035 codec and the simulated resolver;
//! * [`tcpsim`] / [`httpsim`] — connection model and HTTP semantics;
//! * [`bgpsim`] — the Routeviews-style feed and its cleaning;
//! * [`webclient`] — the wget-like measurement client;
//! * [`workload`] — the paper's fleet, sites, fault model, and runner;
//! * [`netprofiler`] — the failure-classification framework;
//! * [`report`] — table/figure rendering.
//!
//! Quickest start:
//!
//! ```no_run
//! use workload::{run_experiment, ExperimentConfig};
//! let out = run_experiment(&ExperimentConfig::quick(42));
//! let analysis = netprofiler::Analysis::with_defaults(&out.dataset);
//! println!("{:?}", netprofiler::blame::table5(&analysis));
//! ```

pub use bgpsim;
pub use dnssim;
pub use dnswire;
pub use httpsim;
pub use model;
pub use netprofiler;
pub use netsim;
pub use report;
pub use tcpsim;
pub use webclient;
pub use workload;
