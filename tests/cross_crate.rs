//! Cross-crate consistency: the substrates agree with each other when
//! composed, independent of the workload calibration.

use dnssim::{LdnsCache, NoFaults, ResolverConfig, StubResolver, ZoneTree};
use dnswire::DomainName;
use model::{SimDuration, SimTime};
use netsim::SimRng;
use proptest::prelude::*;
use std::net::Ipv4Addr;
use tcpsim::{
    classify_trace, count_retransmissions, simulate_connection, PathQuality, ServerBehavior,
    TcpConfig, TraceVerdict,
};

fn hosts() -> Vec<(DomainName, Vec<Ipv4Addr>)> {
    (0..20)
        .map(|i| {
            let name: DomainName = format!("www.host{i:02}.example.com").parse().unwrap();
            let addrs = (0..=(i % 3))
                .map(|j| Ipv4Addr::new(203, 0, i as u8, 80 + j as u8))
                .collect();
            (name, addrs)
        })
        .collect()
}

#[test]
fn resolver_answers_match_zone_truth_for_every_host() {
    let hosts = hosts();
    let tree = ZoneTree::build_for_hosts(&hosts);
    let resolver = StubResolver::new(&tree, ResolverConfig::default());
    let mut rng = SimRng::new(9);
    let mut cache = LdnsCache::new();
    for (name, addrs) in &hosts {
        let res = resolver.resolve(name, &NoFaults, SimTime::from_hours(1), &mut rng, &mut cache);
        let mut got = res.result.expect("healthy resolution");
        got.sort();
        let mut want = addrs.clone();
        want.sort();
        assert_eq!(got, want, "addresses for {name}");
    }
}

#[test]
fn dig_and_resolver_agree_on_healthy_world() {
    let hosts = hosts();
    let tree = ZoneTree::build_for_hosts(&hosts);
    let resolver = StubResolver::new(&tree, ResolverConfig::default());
    let cfg = ResolverConfig::default();
    let mut rng = SimRng::new(10);
    for (name, _) in &hosts {
        let mut cache = LdnsCache::new();
        let wget = resolver.resolve(name, &NoFaults, SimTime::from_hours(2), &mut rng, &mut cache);
        let (dig, _) =
            dnssim::dig_iterative(&tree, name, &NoFaults, SimTime::from_hours(2), &mut rng, &cfg);
        assert_eq!(wget.result.is_ok(), dig.is_resolved(), "disagreement on {name}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any loss rate and behavior, the trace post-processor agrees
    /// with ground truth, and durations respect the configured bounds.
    #[test]
    fn tcp_trace_always_matches_ground_truth(
        seed in 0u64..10_000,
        loss in 0.0f64..0.20,
        behavior_idx in 0usize..5,
        bytes in 500u64..150_000,
    ) {
        let behavior = [
            ServerBehavior::Healthy,
            ServerBehavior::Unreachable,
            ServerBehavior::Refusing,
            ServerBehavior::AcceptNoResponse,
            ServerBehavior::StallAfter(bytes / 2),
        ][behavior_idx];
        let cfg = TcpConfig::default();
        let path = PathQuality { loss, rtt: SimDuration::from_millis(70) };
        let r = simulate_connection(
            &cfg,
            behavior,
            &path,
            bytes,
            SimTime::from_hours(1),
            &mut SimRng::new(seed),
            true,
        );
        let trace = r.trace.as_ref().unwrap();
        let verdict = classify_trace(trace);
        match r.outcome {
            Ok(()) => prop_assert_eq!(verdict, TraceVerdict::Complete),
            Err(kind) => prop_assert_eq!(verdict.failure_kind(), Some(kind)),
        }
        // Trace-visible retransmissions never exceed sender-side truth.
        let (syn, data) = count_retransmissions(trace);
        prop_assert_eq!(syn, u32::from(r.syn_retransmissions));
        prop_assert!(data <= r.retransmissions_sent);
        // A no-connection verdict can't deliver bytes.
        if verdict == TraceVerdict::NoConnection {
            prop_assert_eq!(r.bytes_delivered, 0);
        }
        // Durations: SYN backoff chain bounds the handshake phase; the
        // idle rule bounds the stalled phase.
        prop_assert!(r.duration <= SimDuration::from_secs(60 + 45 + 120));
    }

    /// DNS wire fidelity is an observability feature, not a behavior
    /// change: resolution outcomes are identical with the codec on or off.
    #[test]
    fn wire_fidelity_never_changes_outcomes(seed in 0u64..2_000, host_idx in 0usize..20) {
        let hosts = hosts();
        let tree = ZoneTree::build_for_hosts(&hosts);
        let mut on_cfg = ResolverConfig::default();
        on_cfg.query_loss_prob = 0.0;
        let mut off_cfg = on_cfg;
        off_cfg.wire_fidelity = false;
        let on = StubResolver::new(&tree, on_cfg);
        let off = StubResolver::new(&tree, off_cfg);
        let name = &hosts[host_idx].0;
        let t = SimTime::from_hours(3);
        let a = on.resolve(name, &NoFaults, t, &mut SimRng::new(seed), &mut LdnsCache::new());
        let b = off.resolve(name, &NoFaults, t, &mut SimRng::new(seed), &mut LdnsCache::new());
        match (a.result, b.result) {
            (Ok(mut x), Ok(mut y)) => {
                x.sort();
                y.sort();
                prop_assert_eq!(x, y);
            }
            (Err(x), Err(y)) => prop_assert_eq!(x, y),
            other => prop_assert!(false, "fidelity changed outcome: {:?}", other),
        }
    }
}

#[test]
fn bgp_cleaning_is_stable_on_clean_data() {
    use bgpsim::{aggregate, clean, generate, BgpScenario};
    let sc = BgpScenario::quiet(30, 96);
    let raw = generate(&sc, &mut SimRng::new(3));
    let series = aggregate(&raw.updates, 30, 96);
    let (once, r1) = clean(&series, &raw.hourly_unique_prefixes);
    assert!(r1.reset_hours.is_empty());
    // Cleaning clean data twice changes nothing.
    let (twice, _) = clean(&once, &raw.hourly_unique_prefixes);
    for p in 0..30u32 {
        for h in 0..96u32 {
            assert_eq!(
                once.get(model::PrefixId(p), h),
                twice.get(model::PrefixId(p), h)
            );
        }
    }
}
