//! Degraded-run acceptance: the full pipeline survives apparatus damage.
//!
//! One experiment is run under [`ApparatusFaults::stress`] — client nodes
//! die mid-month, ~1% of records are lost in collection, and the BGP feed
//! is bit-flipped and truncated before salvage-decoding. The run must
//! complete without aborting, account for every loss in its [`RunReport`],
//! and still reproduce the healthy run's Table 3 shapes within tolerance.

use netprofiler::{blame, integrity, summary, Analysis};
use workload::{run_experiment, ApparatusFaults, ExperimentConfig};

fn config(apparatus: ApparatusFaults) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(2006);
    cfg.hours = 24;
    cfg.wire_fidelity = false;
    cfg.apparatus = apparatus;
    cfg
}

#[test]
fn degraded_run_completes_and_reproduces_table3() {
    let out = run_experiment(&config(ApparatusFaults::stress()));
    let healthy = run_experiment(&config(ApparatusFaults::none()));
    assert!(healthy.report.is_clean());

    // The three injected fault kinds all left a mark: dead nodes...
    let lost = out.report.lost_clients();
    assert!(!lost.is_empty(), "stress run must lose at least one client");
    assert!(lost.len() < 20, "but only a handful of the 134");
    // ...collection loss around the configured 1%...
    let emitted = out.report.records_kept() + out.report.records_dropped;
    let drop_rate = out.report.records_dropped as f64 / emitted as f64;
    assert!((0.005..0.02).contains(&drop_rate), "drop rate {drop_rate}");
    // ...and a corrupted feed that salvage partially recovered.
    assert!(out.report.mrt_issues >= 1, "feed corruption must quarantine records");
    assert!(out.report.mrt_records_kept > 0, "salvage must recover records");
    assert!(!out.report.is_clean());

    // Every loss is named in the rendered quarantine summary.
    let q = out.report.quarantine_summary();
    assert!(!q.is_clean());
    let text = q.render();
    for name in out.report.lost_names() {
        assert!(text.contains(name), "lost client {name} unnamed in:\n{text}");
    }
    assert!(text.contains("bgp-mrt quarantined"), "{text}");
    assert!(text.contains("records dropped"), "{text}");

    // The dataset's own integrity audit agrees: exactly the lost clients
    // are missing (record drops at 1% never blank a whole client-hour
    // here, so survivors stay complete).
    let integ = out.dataset.integrity();
    assert_eq!(integ.missing_clients, lost);
    assert!(integ.coverage() < 1.0);

    // Table 3 still has the paper's shape: every category's transaction
    // failure rate tracks the healthy run.
    let degraded_t3 = summary::table3(&model::ColumnarDataset::from_dataset(&out.dataset));
    let healthy_t3 = summary::table3(&model::ColumnarDataset::from_dataset(&healthy.dataset));
    assert_eq!(degraded_t3.len(), healthy_t3.len());
    for (d, h) in degraded_t3.iter().zip(&healthy_t3) {
        assert_eq!(d.category, h.category);
        let (rd, rh) = (d.transaction_failure_rate(), h.transaction_failure_rate());
        let tol = (0.5 * rh).max(0.01);
        assert!(
            (rd - rh).abs() <= tol,
            "{:?}: degraded rate {rd} vs healthy {rh}",
            d.category
        );
    }

    // The degradation-aware analysis runs and flags the damage without
    // changing the attribution arithmetic.
    let a = Analysis::with_defaults(&out.dataset);
    assert!(a.degradation().is_degraded());
    let confident = integrity::table5_with_confidence(&a);
    assert_eq!(confident.breakdown, blame::table5(&a));
}

#[test]
fn corrupted_trace_is_salvaged_and_still_classifiable() {
    use model::{SimDuration, SimTime};
    use netsim::SimRng;
    use tcpsim::pcap::{decode_pcap, decode_pcap_salvage, encode_pcap, PcapEndpoints};
    use tcpsim::{classify_trace, simulate_connection, PathQuality, ServerBehavior, TcpConfig, TraceVerdict};

    let r = simulate_connection(
        &TcpConfig::default(),
        ServerBehavior::Healthy,
        &PathQuality {
            loss: 0.02,
            rtt: SimDuration::from_millis(40),
        },
        30_000,
        SimTime::from_secs(10),
        &mut SimRng::new(77),
        true,
    );
    let trace = r.trace.expect("trace requested");
    let endpoints = PcapEndpoints::default();
    let mut wire = encode_pcap(&trace, &endpoints);

    // Damage the capture file the way the apparatus model does.
    let mut rng = SimRng::new(77).fork_str("trace-corrupt");
    let applied = ApparatusFaults::stress().corrupt_buffer(&mut rng, &mut wire);
    assert!(!applied.is_clean());

    // Strict decoding rejects the file; salvage recovers the bulk of it.
    assert!(decode_pcap(&wire, endpoints.client).is_err() || applied.bitflips == 0);
    let (salvaged, issues) = decode_pcap_salvage(&wire, endpoints.client);
    assert!(!issues.is_empty(), "corruption must be reported");
    assert!(
        salvaged.len() * 2 >= trace.len(),
        "salvage kept {} of {} packets",
        salvaged.len(),
        trace.len()
    );
    // A mostly-intact capture of a completed transfer still reads as one
    // that made progress — never as a failed connection attempt.
    let verdict = classify_trace(&salvaged);
    assert!(
        matches!(verdict, TraceVerdict::Complete | TraceVerdict::PartialResponse),
        "{verdict:?}"
    );
}
