//! Reproducibility guarantees: the whole month-long "Internet" is a pure
//! function of the seed.

use model::Dataset;
use workload::{run_experiment, ExperimentConfig};

fn run(seed: u64, threads: usize) -> Dataset {
    let mut cfg = ExperimentConfig::quick(seed);
    cfg.hours = 8;
    cfg.threads = threads;
    run_experiment(&cfg).dataset
}

/// A cheap structural fingerprint of a dataset.
fn fingerprint(ds: &Dataset) -> (usize, usize, u64, u64, u64) {
    let mut h1 = 0u64;
    for r in &ds.records {
        h1 = h1
            .wrapping_mul(1_000_003)
            .wrapping_add(u64::from(r.client.0))
            .wrapping_add(u64::from(r.site.0).wrapping_mul(131))
            .wrapping_add(r.start.as_micros())
            .wrapping_add(u64::from(r.failed()));
    }
    let mut h2 = 0u64;
    for c in &ds.connections {
        h2 = h2
            .wrapping_mul(1_000_033)
            .wrapping_add(u64::from(u32::from(c.replica)))
            .wrapping_add(c.start.as_micros())
            .wrapping_add(u64::from(c.failed()) << 7);
    }
    let mut h3 = 0u64;
    for (p, h, cell) in ds.bgp.active_cells() {
        h3 = h3
            .wrapping_mul(1_000_037)
            .wrapping_add(u64::from(p.0))
            .wrapping_add(u64::from(h) << 3)
            .wrapping_add(u64::from(cell.withdrawals))
            .wrapping_add(u64::from(cell.neighbors_withdrawing) << 17);
    }
    (ds.records.len(), ds.connections.len(), h1, h2, h3)
}

#[test]
fn same_seed_same_dataset() {
    let a = run(1234, 0);
    let b = run(1234, 0);
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn thread_count_does_not_change_results() {
    let a = run(777, 1);
    let b = run(777, 3);
    let c = run(777, 13);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(fingerprint(&a), fingerprint(&c));
}

#[test]
fn different_seeds_differ() {
    let a = run(1, 0);
    let b = run(2, 0);
    assert_ne!(fingerprint(&a), fingerprint(&b));
    // But the structure is the same.
    assert_eq!(a.clients.len(), b.clients.len());
    assert_eq!(a.sites.len(), b.sites.len());
}

#[test]
fn apparatus_faults_stay_deterministic_across_threads() {
    use workload::ApparatusFaults;
    // Injected infrastructure faults draw from their own RNG streams, so a
    // degraded run must be as thread-invariant as a healthy one — same
    // surviving records, same lost clients, same quarantine counts.
    let faulted = |threads: usize| {
        let mut cfg = ExperimentConfig::quick(4242);
        cfg.hours = 8;
        cfg.wire_fidelity = false;
        cfg.threads = threads;
        cfg.apparatus = ApparatusFaults::stress();
        workload::run_experiment(&cfg)
    };
    let a = faulted(1);
    let b = faulted(5);
    assert_eq!(fingerprint(&a.dataset), fingerprint(&b.dataset));
    assert_eq!(a.report.lost_clients(), b.report.lost_clients());
    assert_eq!(a.report.records_dropped, b.report.records_dropped);
    assert_eq!(a.report.mrt_issues, b.report.mrt_issues);
    assert!(!a.report.is_clean(), "stress faults must leave a mark");
}

#[test]
fn telemetry_recording_does_not_change_results() {
    // The observability layer is observation-only: switching the recorder
    // on must leave the simulated month bit-for-bit identical. This also
    // holds (trivially) under `--no-default-features`, where `enable` is a
    // stub — the test then proves the stub build produces the same world.
    telemetry::enable(false);
    let off = run(31337, 0);
    telemetry::enable(true);
    let on = run(31337, 0);
    telemetry::enable(false);
    assert_eq!(fingerprint(&off), fingerprint(&on));
}

#[test]
fn provenance_recording_does_not_change_results() {
    // The flight recorder is pure observation: stamping every transaction
    // with its ground-truth fault set must not consume a single RNG draw or
    // reorder a single event. Same seed, recorder on vs off → bit-identical
    // dataset. (ci.sh additionally holds this via `audit --check`, which
    // hashes the full dataset debug serialization.)
    let run_prov = |record: bool, threads: usize| {
        let mut cfg = ExperimentConfig::quick(31337);
        cfg.hours = 8;
        cfg.threads = threads;
        cfg.record_provenance = record;
        run_experiment(&cfg)
    };
    let off = run_prov(false, 0);
    let on = run_prov(true, 0);
    assert_eq!(fingerprint(&off.dataset), fingerprint(&on.dataset));
    assert!(off.provenance.is_none(), "no sidecar unless asked");
    let log = on.provenance.expect("sidecar when asked");
    assert_eq!(log.records.len(), on.dataset.records.len());

    // The sidecar itself is thread-invariant, like everything else.
    let on2 = run_prov(true, 5);
    assert_eq!(fingerprint(&on.dataset), fingerprint(&on2.dataset));
    assert_eq!(Some(&log), on2.provenance.as_ref());
}

#[test]
fn forensic_tracing_does_not_change_results() {
    // The forensic tracer rides the same pure truth probes as the flight
    // recorder: switching it on must not consume a single RNG draw or
    // reorder a single event, at any thread count. (ci.sh additionally
    // holds this via `explain --check`, which hashes the full dataset
    // debug serialization in both feature builds.)
    let run_traced = |trace: bool, threads: usize| {
        let mut cfg = ExperimentConfig::quick(31337);
        cfg.hours = 8;
        cfg.threads = threads;
        cfg.forensics = trace.then(workload::ForensicsConfig::default);
        run_experiment(&cfg)
    };
    let off = run_traced(false, 1);
    let on = run_traced(true, 1);
    assert_eq!(fingerprint(&off.dataset), fingerprint(&on.dataset));
    assert!(off.forensics.is_none(), "no exemplar store unless asked");
    let store = on.forensics.as_ref().expect("exemplar store when asked");
    assert!(!store.is_empty(), "a traced run captures exemplars");

    // The exemplar store itself is thread-invariant, like everything else.
    for threads in [2usize, 7] {
        let again = run_traced(true, threads);
        assert_eq!(fingerprint(&on.dataset), fingerprint(&again.dataset));
        let keys: Vec<_> = store.iter().map(|x| (x.key(), x.record_index)).collect();
        let again_keys: Vec<_> = again
            .forensics
            .as_ref()
            .expect("store present")
            .iter()
            .map(|x| (x.key(), x.record_index))
            .collect();
        assert_eq!(keys, again_keys, "exemplars drift at {threads} threads");
    }
}

#[test]
fn existing_worlds_bit_identical_to_pre_archetype_goldens() {
    use workload::ApparatusFaults;
    // Golden fingerprints captured immediately BEFORE the adversarial
    // fault-archetype suite landed. Every archetype draws from its own
    // `fork_str` stream (forked only when its intensity is non-zero), so a
    // run with `AdversarialProfile::none()` — the default — must replay
    // the exact same world the repo produced before the suite existed.
    // If either tuple changes, an archetype is consuming shared RNG state
    // or perturbing event order even when switched off.
    let standard = run(9090, 1);
    assert_eq!(
        fingerprint(&standard),
        (
            85188,
            97008,
            5444639083603919108,
            9914999645929271109,
            12293567977887159832,
        ),
        "standard world drifted from its pre-archetype golden fingerprint"
    );

    let mut cfg = ExperimentConfig::quick(4242);
    cfg.hours = 8;
    cfg.wire_fidelity = false;
    cfg.threads = 1;
    cfg.apparatus = ApparatusFaults::stress();
    let degraded = run_experiment(&cfg).dataset;
    assert_eq!(
        fingerprint(&degraded),
        (
            80849,
            93179,
            17855544009171169314,
            8974359416489872555,
            6117770599523513703,
        ),
        "degraded world drifted from its pre-archetype golden fingerprint"
    );
}

#[test]
fn adversarial_archetypes_stay_deterministic_across_threads() {
    use workload::AdversarialProfile;
    // The full archetype suite — BGP transients, censorship, colo blasts,
    // vantage splits, CDN brownouts, MTU blackholes, wrong-answer DNS —
    // must be as thread-invariant as the healthy world, sidecar included.
    let adversarial = |threads: usize| {
        let mut cfg = ExperimentConfig::quick(616);
        cfg.hours = 8;
        cfg.wire_fidelity = false;
        cfg.threads = threads;
        cfg.record_provenance = true;
        cfg.adversarial = AdversarialProfile::adversarial_month();
        run_experiment(&cfg)
    };
    let a = adversarial(1);
    let b = adversarial(5);
    assert_eq!(fingerprint(&a.dataset), fingerprint(&b.dataset));
    assert_eq!(a.provenance, b.provenance);

    // And the profile actually changes the world — the suite is not a no-op.
    let mut cfg = ExperimentConfig::quick(616);
    cfg.hours = 8;
    cfg.wire_fidelity = false;
    cfg.threads = 1;
    let baseline = run_experiment(&cfg).dataset;
    assert_ne!(
        fingerprint(&a.dataset),
        fingerprint(&baseline),
        "adversarial month must differ from the healthy world"
    );
}

#[test]
fn full_pipeline_and_report_are_thread_invariant() {
    use netprofiler::{pipeline, AnalysisConfig};
    let base_ds = run(9090, 1);
    let base_cfg = AnalysisConfig::default().with_threads(1);
    let base = pipeline::run(&base_ds, base_cfg);
    let base_report = report::render_all(&base_ds, base_cfg, 9090);
    for threads in [2usize, 7] {
        let ds = run(9090, threads);
        assert_eq!(fingerprint(&base_ds), fingerprint(&ds));
        let cfg = AnalysisConfig::default().with_threads(threads);
        let full = pipeline::run(&ds, cfg);
        assert_eq!(full.table5, base.table5);
        assert_eq!(full.table5_conservative, base.table5_conservative);
        assert_eq!(full.overall, base.overall);
        assert_eq!(full.permanent_pairs, base.permanent_pairs);
        let rendered = report::render_all(&ds, cfg, 9090);
        assert!(
            rendered == base_report,
            "rendered report differs at {threads} threads \
             ({} vs {} bytes)",
            rendered.len(),
            base_report.len()
        );
    }
}

#[test]
fn analysis_is_deterministic_too() {
    use netprofiler::{blame, Analysis, AnalysisConfig};
    let ds = run(55, 0);
    let b1 = blame::table5(&Analysis::new(&ds, AnalysisConfig::default()));
    let b2 = blame::table5(&Analysis::new(&ds, AnalysisConfig::default()));
    assert_eq!(b1, b2);
}
