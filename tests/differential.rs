//! Differential oracle tests: the optimized pipeline must match the naive
//! reference implementations field-for-field (f64s bit-equal) on three
//! dataset families — a healthy simulated window, an apparatus-degraded
//! window, and property-generated edge-case datasets — at every thread
//! count. Runs identically with `--no-default-features` (telemetry stub).

use netprofiler::synthetic::SynthWorld;
use netprofiler::AnalysisConfig;
use oracle::gen::property_dataset;
use proptest::prelude::*;
use workload::{run_experiment, ApparatusFaults, ExperimentConfig};

const THREADS: [usize; 3] = [1, 2, 7];

fn assert_clean(name: &str, ds: &model::Dataset) {
    let oracle = oracle::analyze(ds, &AnalysisConfig::default());
    for threads in THREADS {
        let cfg = AnalysisConfig::default().with_threads(threads);
        let report = oracle::check_dataset_with_oracle(ds, cfg, &oracle);
        assert!(
            report.is_clean(),
            "{name} @ {threads} thread(s):\n{}",
            report.render()
        );
    }
}

#[test]
fn standard_family_matches_oracle() {
    let mut cfg = ExperimentConfig::quick(20050101);
    cfg.hours = 8;
    cfg.wire_fidelity = false;
    let ds = run_experiment(&cfg).dataset;
    assert!(!ds.records.is_empty());
    assert_clean("standard", &ds);
}

#[test]
fn degraded_family_matches_oracle() {
    let mut cfg = ExperimentConfig::quick(20050101);
    cfg.hours = 8;
    cfg.wire_fidelity = false;
    cfg.apparatus = ApparatusFaults::stress();
    let ds = run_experiment(&cfg).dataset;
    assert!(!ds.records.is_empty());
    assert_clean("degraded", &ds);
}

#[test]
fn property_family_matches_oracle() {
    for seed in 0..16u64 {
        let ds = property_dataset(seed);
        assert_clean(&format!("property[{seed}]"), &ds);
    }
}

#[test]
fn empty_world_matches_oracle() {
    // No traffic at all: every artifact degenerates, and both sides must
    // degenerate the same way.
    let ds = SynthWorld::new(3, 2, 5).finish();
    assert_clean("empty", &ds);
}

#[test]
fn month_boundary_world_matches_oracle() {
    // Records stamped exactly at hour == ds.hours (the builder permits
    // them) must be dropped by both sides, never aliased into another
    // entity's early hours.
    let mut w = SynthWorld::new(2, 2, 3);
    w.add_conn_batch(model::ClientId(1), model::SiteId(1), 0, 20, 20);
    w.add_failed_conn(model::ClientId(0), model::SiteId(0), 3);
    w.add_txn(model::ClientId(0), model::SiteId(0), 3, false);
    assert_clean("month-boundary", &w.finish());
}

#[test]
fn all_failure_world_matches_oracle() {
    // Every attempt fails: rate exactly 1.0 everywhere, permanent-pair
    // detection and the CDF dedup path both fire.
    let mut w = SynthWorld::new(2, 2, 4);
    for h in 0..4u32 {
        for c in 0..2u16 {
            for s in 0..2u16 {
                w.add_conn_batch(model::ClientId(c), model::SiteId(s), h, 15, 15);
                w.add_txn_batch(model::ClientId(c), model::SiteId(s), h, 15, 15);
            }
        }
    }
    assert_clean("all-failure", &w.finish());
}

#[test]
fn audit_confusion_matches_oracle() {
    // The optimized (sharded) audit confusion matrix must match the naive
    // one-pass recount at every thread count.
    let mut cfg = ExperimentConfig::quick(20050101);
    cfg.hours = 8;
    cfg.wire_fidelity = false;
    cfg.record_provenance = true;
    let out = run_experiment(&cfg);
    let log = out.provenance.expect("provenance requested");
    assert!(!out.dataset.records.is_empty());
    for threads in THREADS {
        let acfg = AnalysisConfig::default().with_threads(threads);
        let report = oracle::check_audit(&out.dataset, acfg, &log);
        assert!(
            report.is_clean(),
            "audit @ {threads} thread(s):\n{}",
            report.render()
        );
    }
}

#[test]
fn differ_detects_divergence() {
    // The harness itself must be falsifiable: against a corrupted oracle
    // the checker has to report, not rubber-stamp.
    let ds = property_dataset(1);
    let cfg = AnalysisConfig::default();
    let mut oracle = oracle::analyze(&ds, &cfg);
    oracle.overall.dns += 1;
    oracle.figure4.client_knee = Some(0.123_456);
    let report = oracle::check_dataset_with_oracle(&ds, cfg, &oracle);
    assert!(!report.is_clean());
    let rendered = report.render();
    assert!(rendered.contains("overall.dns"), "{rendered}");
    assert!(rendered.contains("figure4.client_knee"), "{rendered}");
    assert!(rendered.contains("FAILED"), "{rendered}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cdf_at_and_knee_agree_with_recount(
        rates in proptest::collection::vec(0.0f64..=1.0, 0..40),
        probe in 0.0f64..=1.0,
    ) {
        let cdf = netprofiler::episodes::RateCdf::from_rates(&rates);
        // at(r) must equal the direct recount of samples ≤ r.
        let expected = if rates.is_empty() {
            0.0
        } else {
            rates.iter().filter(|x| **x <= probe).count() as f64 / rates.len() as f64
        };
        prop_assert!((cdf.at(probe) - expected).abs() < 1e-12);
        // The knee, when defined, is one of the observed rates.
        if let Some(k) = cdf.knee() {
            prop_assert!(rates.iter().any(|r| *r == k));
        }
    }

    #[test]
    fn quantile_stays_within_sample_bounds(
        samples in proptest::collection::vec(-1.0e6f64..=1.0e6, 1..50),
        q in 0.0f64..=1.0,
    ) {
        let v = netprofiler::summary::quantile(&samples, q).expect("non-empty");
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= min && v <= max);
        let lo = netprofiler::summary::quantile(&samples, 0.0).expect("non-empty");
        let hi = netprofiler::summary::quantile(&samples, 1.0).expect("non-empty");
        prop_assert!(lo == min, "q=0 must be the minimum");
        prop_assert!(hi == max, "q=1 must be the maximum");
    }
}
