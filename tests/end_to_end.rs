//! End-to-end pipeline invariants: experiment → dataset → analysis.

use model::{ClientCategory, Dataset, FailureClass, TransactionOutcome};
use netprofiler::{blame, summary, Analysis, AnalysisConfig};
use std::sync::OnceLock;
use workload::{run_experiment, ExperimentConfig};

fn shared() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| {
        let mut cfg = ExperimentConfig::quick(97);
        cfg.hours = 24;
        run_experiment(&cfg).dataset
    })
}

#[test]
fn fleet_and_sites_are_paper_shaped() {
    let ds = shared();
    assert_eq!(ds.clients.len(), 134);
    assert_eq!(ds.sites.len(), 80);
    assert_eq!(ds.colocated_pairs().len(), 35);
    assert_eq!(ds.hours, 24);
}

#[test]
fn every_record_is_internally_consistent() {
    let ds = shared();
    for r in &ds.records {
        assert!(r.hour() < ds.hours, "record outside horizon");
        assert!((r.client.0 as usize) < ds.clients.len());
        assert!((r.site.0 as usize) < ds.sites.len());
        match r.outcome {
            TransactionOutcome::Success => {
                assert!(r.dns.is_ok(), "successful transaction with failed DNS");
                assert!(r.bytes_received > 0, "success delivered no bytes");
            }
            TransactionOutcome::Failure(FailureClass::Dns(kind)) => {
                // DNS failures carry the kind in the dns field too, unless
                // the failure hit a redirect hop after a successful initial
                // lookup.
                if let Err(k) = r.dns {
                    assert_eq!(k, kind);
                }
                assert_eq!(r.bytes_received, 0);
            }
            TransactionOutcome::Failure(FailureClass::Tcp(_)) => {
                if r.proxy.is_none() {
                    assert!(
                        r.connections_attempted > 0,
                        "direct TCP failure without connection attempts"
                    );
                }
            }
            TransactionOutcome::Failure(FailureClass::Http(status)) => {
                assert!((300..=599).contains(&status), "odd HTTP status {status}");
            }
        }
    }
}

#[test]
fn connection_records_belong_to_direct_clients_only() {
    let ds = shared();
    for c in &ds.connections {
        // A transaction that starts just before the horizon may spill its
        // later connections past it (the analysis grids drop those).
        assert!(c.hour() <= ds.hours, "connection far past horizon");
        let meta = ds.client(c.client);
        assert!(meta.proxy.is_none(), "proxied client has connection records");
        // Every connection's replica is one of the site's known addresses.
        let site = ds.site(c.site);
        assert!(
            site.addrs.contains(&c.replica),
            "connection to unknown replica {} of {}",
            c.replica,
            site.hostname
        );
    }
}

#[test]
fn transaction_and_connection_counts_relate() {
    let ds = shared();
    let direct: Vec<_> = ds.records.iter().filter(|r| r.proxy.is_none()).collect();
    let sum_attempts: u64 = direct.iter().map(|r| u64::from(r.connections_attempted)).sum();
    assert_eq!(
        sum_attempts,
        ds.connections.len() as u64,
        "per-record connection counts must sum to the connection table"
    );
    let ratio = ds.connections.len() as f64 / direct.len() as f64;
    assert!((1.05..1.6).contains(&ratio), "conn/txn ratio {ratio}");
}

#[test]
fn table3_is_consistent_with_raw_counts() {
    let ds = shared();
    let t3 = summary::table3(&model::ColumnarDataset::from_dataset(ds));
    let total: u64 = t3.iter().map(|r| r.transactions).sum();
    assert_eq!(total, ds.records.len() as u64);
    let cn = t3
        .iter()
        .find(|r| r.category == ClientCategory::CorpNet)
        .unwrap();
    assert!(cn.connections.is_none(), "CN connections masked");
    for row in &t3 {
        assert!(row.failed_transactions <= row.transactions);
        let rate = row.transaction_failure_rate();
        assert!((0.0..0.2).contains(&rate), "{:?} rate {rate}", row.category);
    }
}

#[test]
fn blame_classification_covers_all_failures() {
    let ds = shared();
    let a = Analysis::new(ds, AnalysisConfig::default());
    let b = blame::table5(&a);
    let failed_excl_perm = ds
        .connections
        .iter()
        .filter(|c| c.failed() && !a.permanent.contains(c.client, c.site))
        .count() as u64;
    assert_eq!(b.total(), failed_excl_perm);
    let share_sum = b.share(blame::BlameClass::ServerSide)
        + b.share(blame::BlameClass::ClientSide)
        + b.share(blame::BlameClass::Both)
        + b.share(blame::BlameClass::Other);
    assert!((share_sum - 1.0).abs() < 1e-9);
}

#[test]
fn episode_grids_match_record_totals() {
    let ds = shared();
    let a = Analysis::new(ds, AnalysisConfig::default());
    let mut grid_attempts = 0u64;
    for row in 0..a.client_grid.rows() {
        grid_attempts += a.client_grid.row_totals(row).0;
    }
    let non_perm = ds
        .connections
        .iter()
        .filter(|c| !a.permanent.contains(c.client, c.site) && c.hour() < ds.hours)
        .count() as u64;
    assert_eq!(grid_attempts, non_perm);
}

#[test]
fn dataset_prefixes_cover_all_entities() {
    let ds = shared();
    for c in &ds.clients {
        assert!(!c.prefixes.is_empty());
        assert!(ds
            .prefixes_covering(c.addr)
            .iter()
            .any(|p| c.prefixes.contains(p)));
    }
    for s in &ds.sites {
        for (addr, pfx) in &s.replica_prefixes {
            for p in pfx {
                assert!(ds.prefix(*p).contains(*addr));
            }
        }
    }
}

#[test]
fn bgp_series_spans_horizon() {
    let ds = shared();
    assert_eq!(ds.bgp.hours(), ds.hours);
    assert_eq!(ds.bgp.prefix_count(), ds.prefixes.len());
    // Background churn exists somewhere.
    assert!(ds.bgp.active_cells().count() > 0);
}
