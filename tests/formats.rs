//! Wire-format round trips over real workload output: the simulated feed
//! and traces survive the same on-disk formats the paper's tooling used
//! (MRT for BGP, libpcap for packet traces).

use bgpsim::{aggregate, decode_stream, encode_stream, generate, BgpScenario, MrtPrefixTable};
use model::{PrefixId, SimDuration, SimTime};
use netsim::SimRng;
use tcpsim::{
    classify_trace, decode_pcap, encode_pcap, simulate_connection, PathQuality, PcapEndpoints,
    ServerBehavior, TcpConfig,
};

#[test]
fn month_scale_bgp_feed_round_trips_through_mrt() {
    let prefixes: Vec<model::Ipv4Prefix> = (0..137)
        .map(|i| {
            model::Ipv4Prefix::new(
                std::net::Ipv4Addr::new(100, (i / 250) as u8, (i % 250) as u8, 0),
                24,
            )
            .unwrap()
        })
        .collect();
    let table = MrtPrefixTable::new(&prefixes);
    let mut sc = BgpScenario::quiet(137, 240);
    sc.severe_events = (0..20)
        .map(|i| bgpsim::SevereEvent {
            prefix: PrefixId(i * 5),
            hour: i * 11 % 240,
            neighbors: 71,
            withdrawals_per_neighbor: 3,
            announcements_per_neighbor: 2,
        })
        .collect();
    let raw = generate(&sc, &mut SimRng::new(77));
    assert!(raw.updates.len() > 1_000, "{} updates", raw.updates.len());

    let wire = encode_stream(&raw.updates, &table);
    let decoded = decode_stream(&wire, &table).unwrap();
    assert_eq!(decoded.len(), raw.updates.len());

    // The analysis input (hourly aggregation) is identical either way.
    let direct = aggregate(&raw.updates, 137, 240);
    let via_mrt = aggregate(&decoded, 137, 240);
    for p in 0..137u32 {
        for h in 0..240u32 {
            assert_eq!(direct.get(PrefixId(p), h), via_mrt.get(PrefixId(p), h));
        }
    }
}

#[test]
fn traces_of_every_outcome_round_trip_through_pcap() {
    let cfg = TcpConfig::default();
    let ep = PcapEndpoints::default();
    let mut rng = SimRng::new(41);
    let behaviors = [
        ServerBehavior::Healthy,
        ServerBehavior::Unreachable,
        ServerBehavior::Refusing,
        ServerBehavior::AcceptNoResponse,
        ServerBehavior::StallAfter(6_000),
    ];
    for (i, behavior) in behaviors.iter().cycle().take(100).enumerate() {
        let loss = [0.0, 0.02, 0.08][i % 3];
        let r = simulate_connection(
            &cfg,
            *behavior,
            &PathQuality {
                loss,
                rtt: SimDuration::from_millis(60),
            },
            30_000,
            SimTime::from_hours(1) + SimDuration::from_secs(i as u64 * 100),
            &mut rng,
            true,
        );
        let trace = r.trace.unwrap();
        let wire = encode_pcap(&trace, &ep);
        let decoded = decode_pcap(&wire, ep.client).unwrap();
        assert_eq!(decoded, trace, "case {i} {behavior:?} loss {loss}");
        assert_eq!(classify_trace(&decoded), classify_trace(&trace));
    }
}
