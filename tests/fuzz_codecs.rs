//! Fuzz the three wire codecs with random truncations and bit flips.
//!
//! The contract under test, for pcap, MRT and DNS alike:
//!
//! 1. neither the strict nor the salvage decoder ever panics, whatever the
//!    input bytes;
//! 2. when the strict decoder rejects the input, the salvage decoder
//!    reports at least one issue (corruption never passes silently);
//! 3. when the salvage decoder reports no issues, the strict decoder
//!    succeeds and both decode identically.

use bgpsim::mrt::{decode_stream, decode_stream_salvage, encode_stream, MrtPrefixTable};
use bgpsim::{BgpUpdate, UpdateKind};
use model::{PrefixId, SimDuration, SimTime};
use netsim::SimRng;
use proptest::prelude::*;
use tcpsim::pcap::{decode_pcap, decode_pcap_salvage, encode_pcap, PcapEndpoints};
use tcpsim::{simulate_connection, PathQuality, ServerBehavior, TcpConfig};
use workload::apparatus::{bitflip, truncate_tail};

/// Corrupt `buf` in place: `flips` random bit flips, then (if `cut` is
/// true) a truncation somewhere in the final third.
fn corrupt(buf: &mut Vec<u8>, seed: u64, flips: u32, cut: bool) {
    let mut rng = SimRng::new(seed).fork_str("fuzz-corrupt");
    bitflip(buf, &mut rng, flips);
    if cut {
        if let Some(at) = truncate_tail(buf, &mut rng) {
            buf.truncate(at);
        }
    }
}

fn pcap_fixture(seed: u64) -> Vec<u8> {
    let r = simulate_connection(
        &TcpConfig::default(),
        ServerBehavior::Healthy,
        &PathQuality {
            loss: 0.03,
            rtt: SimDuration::from_millis(60),
        },
        20_000,
        SimTime::from_secs(50),
        &mut SimRng::new(seed),
        true,
    );
    encode_pcap(&r.trace.expect("trace requested"), &PcapEndpoints::default())
}

fn mrt_fixture(seed: u64, prefixes: &[model::Ipv4Prefix]) -> Vec<u8> {
    let table = MrtPrefixTable::new(prefixes);
    let mut rng = SimRng::new(seed).fork_str("fuzz-mrt");
    let updates: Vec<BgpUpdate> = (0..40)
        .map(|i| BgpUpdate {
            time: SimTime::from_secs(i * 97),
            peer: (rng.next_u64() % 73) as u16,
            prefix: PrefixId((rng.next_u64() % prefixes.len() as u64) as u32),
            kind: if rng.next_u64() % 3 == 0 {
                UpdateKind::Withdraw
            } else {
                UpdateKind::Announce
            },
        })
        .collect();
    encode_stream(&updates, &table)
}

fn dns_fixture(seed: u64) -> Vec<u8> {
    use dnswire::{DomainName, Message, RData, RecordType};
    let mut rng = SimRng::new(seed).fork_str("fuzz-dns");
    let host: DomainName = format!("www.site{}.example", rng.next_u64() % 50)
        .parse()
        .expect("valid name");
    let q = Message::query((rng.next_u64() & 0xFFFF) as u16, host.clone(), RecordType::A);
    let mut resp = q.response_from_query();
    for i in 0..(1 + rng.next_u64() % 6) {
        resp.add_answer(
            host.clone(),
            300,
            RData::A(std::net::Ipv4Addr::new(10, 3, 0, i as u8)),
        );
    }
    resp.add_authority(
        "example".parse().expect("valid name"),
        3600,
        RData::Ns("ns.example".parse().expect("valid name")),
    );
    resp.encode().expect("fixture encodes")
}

fn prefixes() -> Vec<model::Ipv4Prefix> {
    (0..8u8)
        .map(|i| model::Ipv4Prefix::new(std::net::Ipv4Addr::new(10, 0, i, 0), 24).expect("/24"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// pcap: the decoder contract holds under random damage.
    #[test]
    fn pcap_decoders_survive_corruption(
        seed in 0u64..1_000_000,
        flips in 0u32..12,
        cut in 0u8..2,
    ) {
        let mut wire = pcap_fixture(seed);
        corrupt(&mut wire, seed, flips, cut == 1);
        let client = PcapEndpoints::default().client;
        let strict = decode_pcap(&wire, client);
        let (salvaged, issues) = decode_pcap_salvage(&wire, client);
        if strict.is_err() {
            prop_assert!(!issues.is_empty(), "corruption must be reported");
        }
        if issues.is_empty() {
            prop_assert_eq!(salvaged, strict.expect("no issues implies strict success"));
        }
    }

    /// MRT: the decoder contract holds under random damage.
    #[test]
    fn mrt_decoders_survive_corruption(
        seed in 0u64..1_000_000,
        flips in 0u32..12,
        cut in 0u8..2,
    ) {
        let pfx = prefixes();
        let table = MrtPrefixTable::new(&pfx);
        let mut wire = mrt_fixture(seed, &pfx);
        corrupt(&mut wire, seed, flips, cut == 1);
        let strict = decode_stream(&wire, &table);
        let (salvaged, issues) = decode_stream_salvage(&wire, &table);
        if strict.is_err() {
            prop_assert!(!issues.is_empty(), "corruption must be reported");
        }
        if issues.is_empty() {
            prop_assert_eq!(salvaged, strict.expect("no issues implies strict success"));
        }
    }

    /// DNS: the decoder contract holds under random damage.
    #[test]
    fn dns_decoders_survive_corruption(
        seed in 0u64..1_000_000,
        flips in 0u32..12,
        cut in 0u8..2,
    ) {
        let mut wire = dns_fixture(seed);
        corrupt(&mut wire, seed, flips, cut == 1);
        let strict = dnswire::Message::decode(&wire);
        let (salvaged, issues) = dnswire::Message::decode_salvage(&wire);
        if strict.is_err() {
            prop_assert!(!issues.is_empty(), "corruption must be reported");
        }
        if issues.is_empty() {
            prop_assert_eq!(salvaged, strict.expect("no issues implies strict success"));
        }
    }

    /// Pure garbage never panics any decoder, strict or salvage.
    #[test]
    fn garbage_never_panics_any_decoder(
        bytes in proptest::collection::vec(any::<u8>(), 0..600),
    ) {
        let pfx = prefixes();
        let table = MrtPrefixTable::new(&pfx);
        let client = PcapEndpoints::default().client;
        let _ = decode_pcap(&bytes, client);
        let _ = decode_pcap_salvage(&bytes, client);
        let _ = decode_stream(&bytes, &table);
        let _ = decode_stream_salvage(&bytes, &table);
        let _ = dnswire::Message::decode(&bytes);
        let _ = dnswire::Message::decode_salvage(&bytes);
    }
}
