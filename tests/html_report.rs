//! HTML report determinism and self-containment.
//!
//! The page is a pure function of its inputs: with the nondeterministic
//! blocks (stage walls, telemetry span aggregates) pinned, the same seed
//! must yield byte-identical pages at any thread count — and generating
//! the page must never perturb the text fingerprint surface
//! (`render_all`).

use netprofiler::{Analysis, AnalysisConfig};
use workload::{run_experiment, ExperimentConfig, ExperimentOutput};

fn run(seed: u64, threads: usize, provenance: bool) -> (ExperimentOutput, ExperimentConfig) {
    let mut cfg = ExperimentConfig::quick(seed);
    cfg.hours = 8;
    cfg.threads = threads;
    cfg.record_provenance = provenance;
    (run_experiment(&cfg), cfg)
}

/// Build the page exactly as `reproduce --html` does, with the
/// nondeterministic manifest walls zeroed and a fixed stage profile, so
/// byte comparison across runs is meaningful.
fn page_for(out: &ExperimentOutput, cfg: &ExperimentConfig, seed: u64) -> String {
    let a5 = Analysis::new(&out.dataset, AnalysisConfig::default());
    let a10 = Analysis::new(&out.dataset, AnalysisConfig::conservative());
    let mut manifest = bench_suite::manifest_for(out, cfg, "quick", seed);
    for w in &mut manifest.stage_walls {
        w.seconds = 0.0;
    }
    let sources = vec![(
        "BENCH_parallel.json".to_string(),
        "{\"scale\": \"quick\", \"seed\": 1, \"cores\": 4, \"sweep\": [\
         {\"threads\": 1, \"speedup\": 1.0, \"efficiency\": 1.0},\
         {\"threads\": 4, \"speedup\": 3.1, \"efficiency\": 0.775}],\
         \"tables_identical\": true}"
            .to_string(),
    )];
    let missing = vec!["BENCH_audit.json".to_string()];
    bench_suite::html_page(out, &a5, &a10, seed, &manifest, &sources, missing, &[])
}

#[test]
fn page_is_byte_identical_across_generations_and_thread_counts() {
    let (out1, cfg1) = run(2006, 1, true);
    let first = page_for(&out1, &cfg1, 2006);
    let again = page_for(&out1, &cfg1, 2006);
    assert_eq!(first, again, "same inputs must give the same bytes");

    let (out2, cfg2) = run(2006, 2, true);
    let (out7, cfg7) = run(2006, 7, true);
    // Thread count changes threads_configured/threads_effective in the
    // manifest (it is honest about the run), so pin those too before
    // comparing the rest of the page.
    let strip = |page: &str| -> String {
        page.lines()
            .filter(|l| !l.contains("threads"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let p2 = page_for(&out2, &cfg2, 2006);
    let p7 = page_for(&out7, &cfg7, 2006);
    assert_eq!(strip(&p2), strip(&p7), "thread count leaked into the page");
    assert_eq!(strip(&first), strip(&p2));
}

#[test]
fn page_is_self_contained_and_has_every_section() {
    let (out, cfg) = run(2006, 0, true);
    let page = page_for(&out, &cfg, 2006);
    for anchor in [
        "id=\"manifest\"",
        "id=\"paper\"",
        "id=\"compare\"",
        "id=\"audit\"",
        "id=\"quarantine\"",
        "id=\"telemetry\"",
        "id=\"trajectory\"",
    ] {
        assert!(page.contains(anchor), "missing section {anchor}");
    }
    // Zero external requests: no URLs, no CSS imports, no url() fetches.
    assert!(!page.contains("http://"));
    assert!(!page.contains("https://"));
    assert!(!page.contains("url("));
    assert!(!page.contains("@import"));
    // The paper blocks are all present as escaped <pre> text.
    assert!(page.contains("id=\"paper-table1\""));
    assert!(page.contains("id=\"paper-compare\"") || page.contains("id=\"compare\""));
    // Missing bench artifacts degrade to a note, not an error.
    assert!(page.contains("BENCH_audit.json: not found"));
}

#[test]
fn html_generation_leaves_the_text_fingerprint_unchanged() {
    // `reproduce --html` flips record_provenance on; the text surface must
    // not notice. (Zero-perturbation of provenance is already held by
    // `audit --check`; this pins the report path end to end.)
    let (plain, _) = run(424242, 0, false);
    let (with_html, cfg) = run(424242, 0, true);
    let text_plain = report::render_all(&plain.dataset, AnalysisConfig::default(), 424242);
    let text_html = report::render_all(&with_html.dataset, AnalysisConfig::default(), 424242);
    assert_eq!(text_plain, text_html);

    // Generating the page does not mutate anything the text render reads.
    let _page = page_for(&with_html, &cfg, 424242);
    let text_after = report::render_all(&with_html.dataset, AnalysisConfig::default(), 424242);
    assert_eq!(text_plain, text_after);
}

#[test]
fn manifest_json_matches_page_fingerprint() {
    let (out, cfg) = run(99, 0, true);
    let manifest = bench_suite::manifest_for(&out, &cfg, "quick", 99);
    let json = manifest.to_json();
    let hex = format!("{:016x}", manifest.dataset_fingerprint);
    assert!(json.contains(&hex), "manifest.json must carry the fingerprint");
    let page = page_for(&out, &cfg, 99);
    assert!(page.contains(&hex), "page must carry the same fingerprint");
    assert_eq!(
        manifest.dataset_fingerprint,
        bench_suite::dataset_fingerprint(&out.dataset),
        "fingerprint is a pure function of the dataset"
    );
}
