//! Directional checks of the paper's findings at test scale.
//!
//! The full quantitative sheet runs at reproduction scale via the
//! `reproduce` harness (see EXPERIMENTS.md); these tests assert the
//! *directions* that must hold even in a week-long run.

use model::{ClientCategory, Dataset, DnsFailureKind};
use netprofiler::{
    blame, dns_analysis, replicas, similarity, summary, tcp_analysis, Analysis, AnalysisConfig,
};
use std::sync::OnceLock;
use workload::{run_experiment, ExperimentConfig};

fn shared() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| {
        let mut cfg = ExperimentConfig::quick(4242);
        cfg.hours = 120;
        cfg.wire_fidelity = false;
        run_experiment(&cfg).dataset
    })
}

fn shared_cds() -> &'static model::ColumnarDataset {
    static CDS: OnceLock<model::ColumnarDataset> = OnceLock::new();
    CDS.get_or_init(|| model::ColumnarDataset::from_dataset(shared()))
}

#[test]
fn failure_rates_are_low_but_nonzero() {
    let ds = shared();
    let overall = ds.overall_failure_rate();
    assert!(
        (0.005..0.05).contains(&overall),
        "overall failure rate {overall}"
    );
    let rates = summary::client_failure_rates(shared_cds());
    let median = summary::quantile(&rates, 0.5).unwrap();
    assert!((0.004..0.04).contains(&median), "median {median}");
}

#[test]
fn planetlab_fails_more_than_dialup() {
    let ds = shared();
    let f1 = summary::figure1(shared_cds());
    let get = |cat| {
        f1.iter()
            .find(|(c, _, _)| *c == cat)
            .map(|(_, r, _)| *r)
            .unwrap()
    };
    assert!(get(ClientCategory::PlanetLab) > 2.0 * get(ClientCategory::Dialup));
}

#[test]
fn dns_and_tcp_dominate_http_is_rare() {
    let b = summary::overall_breakdown(shared_cds());
    assert!(b.dns_share() > 0.25, "DNS share {}", b.dns_share());
    assert!(b.tcp_share() > 0.40, "TCP share {}", b.tcp_share());
    assert!(b.http_share() < 0.05, "HTTP share {}", b.http_share());
}

#[test]
fn ldns_timeouts_dominate_dns_failures() {
    let ds = shared();
    let b = dns_analysis::dns_breakdown(ds, ClientCategory::PlanetLab);
    assert!(b.total > 100, "enough DNS failures to judge: {}", b.total);
    assert!(b.ldns_share() > 0.6, "LDNS share {}", b.ldns_share());
}

#[test]
fn dns_errors_concentrate_on_broken_domains() {
    let ds = shared();
    let errors = dns_analysis::domain_concentration(ds, |k| {
        matches!(k, DnsFailureKind::ErrorResponse(_))
    });
    let ldns = dns_analysis::domain_concentration(ds, |k| k == DnsFailureKind::LdnsTimeout);
    // Errors pile onto brazzil/espn; LDNS timeouts spread across all sites.
    assert!(errors.top_share() > 0.3, "error top share {}", errors.top_share());
    assert!(ldns.top_share() < 0.08, "ldns top share {}", ldns.top_share());
    assert!(errors.skew() > ldns.skew());
    // The top error domain is one of the two configured broken zones.
    let top_site = ds.site(model::SiteId(errors.per_site[0].0));
    assert!(
        top_site.hostname.contains("brazzil") || top_site.hostname.contains("espn"),
        "unexpected top error domain {}",
        top_site.hostname
    );
}

#[test]
fn no_connection_dominates_tcp_failures_for_pl() {
    let ds = shared();
    let pl = tcp_analysis::tcp_breakdown(ds, ClientCategory::PlanetLab);
    assert!(pl.total > 500);
    assert!(pl.no_connection_share() > 0.6);
    // BB clients have no traces: their post-handshake failures are merged.
    let bb = tcp_analysis::tcp_breakdown(ds, ClientCategory::Broadband);
    assert_eq!(bb.no_response, 0);
    assert_eq!(bb.partial_response, 0);
    assert!(bb.no_or_partial > 0);
    assert!(
        bb.no_connection_share() < pl.no_connection_share(),
        "BB no-conn share should be lower than PL's"
    );
}

#[test]
fn permanent_pairs_detected_and_heavily_retried() {
    let ds = shared();
    let a = Analysis::new(ds, AnalysisConfig::default());
    assert_eq!(a.permanent.len(), 38);
    assert!(
        a.permanent.share_of_connection_failures > a.permanent.share_of_transaction_failures,
        "wget retries inflate the connection share"
    );
    for p in &a.permanent.detail {
        assert!(p.failure_rate() > 0.9);
        assert_eq!(ds.client(p.client).category, ClientCategory::PlanetLab);
    }
}

#[test]
fn server_side_dominates_client_side() {
    let ds = shared();
    let a = Analysis::new(ds, AnalysisConfig::default());
    let b = blame::table5(&a);
    assert!(b.total() > 1_000);
    assert!(
        b.share(blame::BlameClass::ServerSide) > 1.3 * b.share(blame::BlameClass::ClientSide),
        "server {} vs client {}",
        b.share(blame::BlameClass::ServerSide),
        b.share(blame::BlameClass::ClientSide)
    );
    assert!(b.share(blame::BlameClass::Both) < 0.3);
}

#[test]
fn conservative_threshold_classifies_less() {
    let ds = shared();
    let b5 = blame::table5(&Analysis::new(ds, AnalysisConfig::default()));
    let b10 = blame::table5(&Analysis::new(ds, AnalysisConfig::conservative()));
    assert!(b10.classified_share() < b5.classified_share());
    assert_eq!(b5.total(), b10.total());
}

#[test]
fn replica_structure_recovered_from_measurements() {
    let ds = shared();
    let a = Analysis::new(ds, AnalysisConfig::default());
    let r = replicas::analyze(&a);
    assert_eq!(r.zero_replica_sites, 6, "CDN sites have no qualifying replicas");
    assert_eq!(r.single_replica_sites, 42);
    assert_eq!(r.multi_replica_sites, 32);
    if r.total_replica_hours > 0 {
        assert!(
            r.same_subnet_share() > 0.7,
            "total-replica failures are a same-subnet phenomenon: {}",
            r.same_subnet_share()
        );
    }
}

#[test]
fn colocated_similarity_beats_random() {
    let ds = shared();
    let a = Analysis::new(ds, AnalysisConfig::default());
    let coloc = similarity::colocated_similarities(&a);
    assert_eq!(coloc.len(), 35);
    let random = similarity::random_pair_similarities(&a, 35, 5);
    let mean = |v: &[similarity::PairSimilarity]| {
        v.iter().map(|p| p.similarity()).sum::<f64>() / v.len() as f64
    };
    assert!(mean(&coloc) > mean(&random));
    // The Intel-like pair is the standout sharer (Table 8's top row).
    let rows = similarity::table8(&a);
    let top = &rows[0];
    let name = &ds.client(top.a).name;
    assert!(
        name.contains("intel-research"),
        "top sharing pair should be the Intel-like site, got {name}"
    );
    assert!(top.similarity() > 0.5, "Intel pair similarity {}", top.similarity());
}

#[test]
fn proxied_clients_show_residual_failures_on_flappy_sites() {
    let ds = shared();
    let a = Analysis::new(ds, AnalysisConfig::default());
    let site = ds
        .sites
        .iter()
        .find(|s| s.hostname.contains("iitb"))
        .unwrap();
    let row = netprofiler::proxy_analysis::residual_rates(&a, site.id);
    assert_eq!(row.proxied.len(), 5);
    let cn_mean: f64 = row
        .proxied
        .iter()
        .map(|(_, rr)| rr.rate())
        .sum::<f64>()
        / 5.0;
    assert!(
        cn_mean > 3.0 * row.non_cn.rate(),
        "CN mean {cn_mean} vs non-CN {}",
        row.non_cn.rate()
    );
}
