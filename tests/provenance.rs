//! Flight-recorder guarantees: the provenance sidecar is parallel to the
//! dataset, stamps track fault boundaries exactly (including faults that
//! start or end mid-hour), overlapping faults union their flags, proxied
//! clients share one true cause, and the audit scored against the sidecar
//! clears the agreement floor.

use model::{FaultSet, SimTime, TrueBlame};
use netsim::Timeline;
use webclient::AccessEnvironment;
use workload::{build_fleet, build_sites, run_experiment, ExperimentConfig, GroundTruth};
use workload::{ClientView, ProxyView};

fn t(hours: f64) -> SimTime {
    SimTime::from_micros((hours * 3_600.0 * 1_000_000.0) as u64)
}

fn small_world(hours: u32) -> (workload::FleetSpec, Vec<workload::SiteSpec>, GroundTruth) {
    let fleet = build_fleet();
    let sites = build_sites();
    let gt = GroundTruth::materialize(&fleet, &sites, hours, 7);
    (fleet, sites, gt)
}

#[test]
fn stamps_follow_a_fault_that_starts_and_ends_mid_hour() {
    let (_, sites, mut gt) = small_world(6);
    // Last-mile outage for client 0 from 1h24m to 2h12m: covers 0.6 of
    // hour 1 (stamped as a fault hour at the 0.5-coverage rule) and 0.2 of
    // hour 2 (not a fault hour) — but the *stamp* tracks the instant, not
    // the hour.
    gt.link[0] = Timeline::from_changes(false, [(t(1.4), true), (t(2.2), false)]);
    let view = ClientView::new(&gt, 0);
    let host: dnswire::DomainName = sites[0].hostname.parse().expect("valid hostname");

    assert!(
        !view.true_dns_faults(&host, t(1.39)).contains(FaultSet::LAST_MILE),
        "before onset the stamp must be clean"
    );
    for probe in [1.4, 1.5, 1.99, 2.0, 2.19] {
        assert!(
            view.true_dns_faults(&host, t(probe)).contains(FaultSet::LAST_MILE),
            "at {probe}h the outage is active"
        );
        let replica = workload::sites::site_addresses(0, sites[0].layout)[0];
        assert!(
            view.true_faults(replica, t(probe)).contains(FaultSet::LAST_MILE),
            "the connect-phase stamp sees the same outage at {probe}h"
        );
    }
    assert!(
        !view.true_dns_faults(&host, t(2.21)).contains(FaultSet::LAST_MILE),
        "after recovery the stamp must be clean again"
    );

    // The answer key applies the half-hour coverage rule.
    let sidecar = gt.truth_sidecar(&sites);
    assert!(sidecar.client_fault_hours[0].contains(&1), "hour 1 is 60% covered");
    assert!(!sidecar.client_fault_hours[0].contains(&2), "hour 2 is only 20% covered");
}

#[test]
fn overlapping_faults_union_their_flags() {
    let (_, sites, mut gt) = small_world(6);
    // Last-mile outage 1h–3h overlapping an LDNS outage 2h–4h, with a WAN
    // outage inside the overlap.
    gt.link[0] = Timeline::from_changes(false, [(t(1.0), true), (t(3.0), false)]);
    gt.ldns[0] = Timeline::from_changes(false, [(t(2.0), true), (t(4.0), false)]);
    gt.wan[0] = Timeline::from_changes(false, [(t(2.25), true), (t(2.75), false)]);
    let view = ClientView::new(&gt, 0);
    let host: dnswire::DomainName = sites[0].hostname.parse().expect("valid hostname");

    let only_link = view.true_dns_faults(&host, t(1.5));
    assert!(only_link.contains(FaultSet::LAST_MILE) && !only_link.contains(FaultSet::LDNS_DOWN));

    let both = view.true_dns_faults(&host, t(2.1));
    assert!(both.contains(FaultSet::LAST_MILE) && both.contains(FaultSet::LDNS_DOWN));

    let all_three = view.true_dns_faults(&host, t(2.5));
    assert!(all_three.contains(FaultSet::LAST_MILE | FaultSet::LDNS_DOWN | FaultSet::WAN));
    assert_eq!(all_three.true_blame(), TrueBlame::ClientSide);

    let only_ldns = view.true_dns_faults(&host, t(3.5));
    assert!(!only_ldns.contains(FaultSet::LAST_MILE) && only_ldns.contains(FaultSet::LDNS_DOWN));

    // The answer key records hours 1–3 as fault hours (each is majority-
    // covered by at least one of the overlapping outages).
    let sidecar = gt.truth_sidecar(&sites);
    for h in 1..=3u32 {
        assert!(sidecar.client_fault_hours[0].contains(&h), "hour {h}");
    }
    assert!(!sidecar.client_fault_hours[0].contains(&4));
}

#[test]
fn proxied_clients_share_one_true_cause() {
    let (fleet, sites, mut gt) = small_world(6);
    // Proxy 0's upstream link goes down 1h–2h. Every client behind that
    // proxy must see the same PROXY_LINK stamp — one true cause, shared.
    gt.proxy_link[0] = Timeline::from_changes(false, [(t(1.0), true), (t(2.0), false)]);
    let host: dnswire::DomainName = sites[0].hostname.parse().expect("valid hostname");
    let proxy_view = ProxyView::new(&gt, 0);

    let during = proxy_view.true_dns_faults(&host, t(1.5));
    assert!(during.contains(FaultSet::PROXY_LINK));
    assert_eq!(during.true_blame(), TrueBlame::ClientSide);
    assert!(!proxy_view.true_dns_faults(&host, t(0.5)).contains(FaultSet::PROXY_LINK));

    // The proxy-level stamp is identical regardless of which client sits
    // behind it, and the clients' own last-mile stamps stay independent.
    let behind: Vec<u16> = fleet
        .clients
        .iter()
        .enumerate()
        .filter(|(_, c)| c.proxy.map(|p| p.0) == Some(0))
        .map(|(i, _)| i as u16)
        .collect();
    assert!(behind.len() >= 1, "fleet has clients behind proxy 0");
    for &c in &behind {
        let own = ClientView::new(&gt, c).true_dns_faults(&host, t(1.5));
        assert!(
            !own.contains(FaultSet::PROXY_LINK),
            "client-vantage stamps never carry proxy flags"
        );
    }
}

#[test]
fn sidecar_is_parallel_and_vantage_consistent() {
    let mut cfg = ExperimentConfig::quick(20050101);
    cfg.hours = 8;
    cfg.wire_fidelity = false;
    cfg.record_provenance = true;
    let out = run_experiment(&cfg);
    let log = out.provenance.expect("provenance requested");
    assert_eq!(log.records.len(), out.dataset.records.len());
    assert_eq!(log.truth.hours, out.dataset.hours);
    assert_eq!(log.truth.client_fault_hours.len(), out.dataset.clients.len());
    assert_eq!(log.truth.site_fault_hours.len(), out.dataset.sites.len());
    assert_eq!(log.truth.blocked_pairs.len(), 38, "the injected blocked pairs");

    let mut stamped_faults = 0u64;
    for (r, stamp) in out.dataset.records.iter().zip(&log.records) {
        let all = stamp.all();
        if r.proxy.is_some() {
            // The proxy hides the replica: connect-phase stamping is
            // impossible from this vantage, and pair-level conditions
            // between the *client* and the site cannot reach the stamp.
            assert!(stamp.connect.is_empty(), "proxied records stamp DNS-phase only");
            assert!(!all.contains(FaultSet::BLOCKED_PAIR) && !all.contains(FaultSet::DEGRADED_PAIR));
        } else {
            // Direct records never carry proxy-infrastructure flags.
            assert!(!all.contains(FaultSet::PROXY_LINK) && !all.contains(FaultSet::PROXY_LDNS));
        }
        stamped_faults += u64::from(!all.is_empty());
    }
    assert!(stamped_faults > 0, "an 8-hour window must hit some injected fault");

    // Failed records on an injected blocked pair whose failure reached the
    // connect phase must carry the pair-specific stamp.
    let blocked: std::collections::HashSet<(u16, u16)> =
        log.truth.blocked_pairs.iter().copied().collect();
    let mut blocked_failures = 0u64;
    for (r, stamp) in out.dataset.records.iter().zip(&log.records) {
        if r.proxy.is_none()
            && r.failed()
            && !r.failure().expect("failed").is_dns()
            && blocked.contains(&(r.client.0, r.site.0))
        {
            assert!(stamp.connect.contains(FaultSet::BLOCKED_PAIR));
            assert_eq!(stamp.all().true_blame(), TrueBlame::PairSpecific);
            blocked_failures += 1;
        }
    }
    assert!(blocked_failures > 0, "blocked pairs fail constantly by design");
}

#[test]
fn audit_clears_the_agreement_floor_end_to_end() {
    use netprofiler::{audit, Analysis, AnalysisConfig};
    let mut cfg = ExperimentConfig::quick(20050101);
    cfg.hours = 24;
    cfg.wire_fidelity = false;
    cfg.record_provenance = true;
    let out = run_experiment(&cfg);
    let log = out.provenance.expect("provenance requested");
    let analysis = Analysis::new(&out.dataset, AnalysisConfig::default());
    let report = audit::audit(&analysis, &log);

    assert_eq!(report.stamped_records, out.dataset.records.len() as u64);
    assert!(report.blame.total() > 0, "a day of accesses produces scorable failures");
    assert!(
        report.blame.agreement() >= 0.5,
        "blame agreement {:.3} below the 0.5 floor\nmatrix: {:?}",
        report.blame.agreement(),
        report.blame.matrix
    );
    // Detection never invents blocked pairs that were not injected.
    assert_eq!(report.pairs.spurious, Vec::<(u16, u16)>::new());
    assert!(report.pairs.overlap.precision() >= 0.5);
}
