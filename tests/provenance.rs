//! Flight-recorder guarantees: the provenance sidecar is parallel to the
//! dataset, stamps track fault boundaries exactly (including faults that
//! start or end mid-hour), overlapping faults union their flags, proxied
//! clients share one true cause, and the audit scored against the sidecar
//! clears the agreement floor.

use model::{FaultSet, SimTime, TrueBlame};
use netsim::Timeline;
use webclient::AccessEnvironment;
use workload::{build_fleet, build_sites, run_experiment, ExperimentConfig, GroundTruth};
use workload::{ClientView, ProxyView};

fn t(hours: f64) -> SimTime {
    SimTime::from_micros((hours * 3_600.0 * 1_000_000.0) as u64)
}

fn small_world(hours: u32) -> (workload::FleetSpec, Vec<workload::SiteSpec>, GroundTruth) {
    let fleet = build_fleet();
    let sites = build_sites();
    let gt = GroundTruth::materialize(&fleet, &sites, hours, 7);
    (fleet, sites, gt)
}

#[test]
fn stamps_follow_a_fault_that_starts_and_ends_mid_hour() {
    let (_, sites, mut gt) = small_world(6);
    // Last-mile outage for client 0 from 1h24m to 2h12m: covers 0.6 of
    // hour 1 (stamped as a fault hour at the 0.5-coverage rule) and 0.2 of
    // hour 2 (not a fault hour) — but the *stamp* tracks the instant, not
    // the hour.
    gt.link[0] = Timeline::from_changes(false, [(t(1.4), true), (t(2.2), false)]);
    let view = ClientView::new(&gt, 0);
    let host: dnswire::DomainName = sites[0].hostname.parse().expect("valid hostname");

    assert!(
        !view.true_dns_faults(&host, t(1.39)).contains(FaultSet::LAST_MILE),
        "before onset the stamp must be clean"
    );
    for probe in [1.4, 1.5, 1.99, 2.0, 2.19] {
        assert!(
            view.true_dns_faults(&host, t(probe)).contains(FaultSet::LAST_MILE),
            "at {probe}h the outage is active"
        );
        let replica = workload::sites::site_addresses(0, sites[0].layout)[0];
        assert!(
            view.true_faults(replica, t(probe)).contains(FaultSet::LAST_MILE),
            "the connect-phase stamp sees the same outage at {probe}h"
        );
    }
    assert!(
        !view.true_dns_faults(&host, t(2.21)).contains(FaultSet::LAST_MILE),
        "after recovery the stamp must be clean again"
    );

    // The answer key applies the half-hour coverage rule.
    let sidecar = gt.truth_sidecar(&sites);
    assert!(sidecar.client_fault_hours[0].contains(&1), "hour 1 is 60% covered");
    assert!(!sidecar.client_fault_hours[0].contains(&2), "hour 2 is only 20% covered");
}

#[test]
fn overlapping_faults_union_their_flags() {
    let (_, sites, mut gt) = small_world(6);
    // Last-mile outage 1h–3h overlapping an LDNS outage 2h–4h, with a WAN
    // outage inside the overlap.
    gt.link[0] = Timeline::from_changes(false, [(t(1.0), true), (t(3.0), false)]);
    gt.ldns[0] = Timeline::from_changes(false, [(t(2.0), true), (t(4.0), false)]);
    gt.wan[0] = Timeline::from_changes(false, [(t(2.25), true), (t(2.75), false)]);
    let view = ClientView::new(&gt, 0);
    let host: dnswire::DomainName = sites[0].hostname.parse().expect("valid hostname");

    let only_link = view.true_dns_faults(&host, t(1.5));
    assert!(only_link.contains(FaultSet::LAST_MILE) && !only_link.contains(FaultSet::LDNS_DOWN));

    let both = view.true_dns_faults(&host, t(2.1));
    assert!(both.contains(FaultSet::LAST_MILE) && both.contains(FaultSet::LDNS_DOWN));

    let all_three = view.true_dns_faults(&host, t(2.5));
    assert!(all_three.contains(FaultSet::LAST_MILE | FaultSet::LDNS_DOWN | FaultSet::WAN));
    assert_eq!(all_three.true_blame(), TrueBlame::ClientSide);

    let only_ldns = view.true_dns_faults(&host, t(3.5));
    assert!(!only_ldns.contains(FaultSet::LAST_MILE) && only_ldns.contains(FaultSet::LDNS_DOWN));

    // The answer key records hours 1–3 as fault hours (each is majority-
    // covered by at least one of the overlapping outages).
    let sidecar = gt.truth_sidecar(&sites);
    for h in 1..=3u32 {
        assert!(sidecar.client_fault_hours[0].contains(&h), "hour {h}");
    }
    assert!(!sidecar.client_fault_hours[0].contains(&4));
}

#[test]
fn proxied_clients_share_one_true_cause() {
    let (fleet, sites, mut gt) = small_world(6);
    // Proxy 0's upstream link goes down 1h–2h. Every client behind that
    // proxy must see the same PROXY_LINK stamp — one true cause, shared.
    gt.proxy_link[0] = Timeline::from_changes(false, [(t(1.0), true), (t(2.0), false)]);
    let host: dnswire::DomainName = sites[0].hostname.parse().expect("valid hostname");
    let proxy_view = ProxyView::new(&gt, 0);

    let during = proxy_view.true_dns_faults(&host, t(1.5));
    assert!(during.contains(FaultSet::PROXY_LINK));
    assert_eq!(during.true_blame(), TrueBlame::ClientSide);
    assert!(!proxy_view.true_dns_faults(&host, t(0.5)).contains(FaultSet::PROXY_LINK));

    // The proxy-level stamp is identical regardless of which client sits
    // behind it, and the clients' own last-mile stamps stay independent.
    let behind: Vec<u16> = fleet
        .clients
        .iter()
        .enumerate()
        .filter(|(_, c)| c.proxy.map(|p| p.0) == Some(0))
        .map(|(i, _)| i as u16)
        .collect();
    assert!(behind.len() >= 1, "fleet has clients behind proxy 0");
    for &c in &behind {
        let own = ClientView::new(&gt, c).true_dns_faults(&host, t(1.5));
        assert!(
            !own.contains(FaultSet::PROXY_LINK),
            "client-vantage stamps never carry proxy flags"
        );
    }
}

#[test]
fn sidecar_is_parallel_and_vantage_consistent() {
    let mut cfg = ExperimentConfig::quick(20050101);
    cfg.hours = 8;
    cfg.wire_fidelity = false;
    cfg.record_provenance = true;
    let out = run_experiment(&cfg);
    let log = out.provenance.expect("provenance requested");
    assert_eq!(log.records.len(), out.dataset.records.len());
    assert_eq!(log.truth.hours, out.dataset.hours);
    assert_eq!(log.truth.client_fault_hours.len(), out.dataset.clients.len());
    assert_eq!(log.truth.site_fault_hours.len(), out.dataset.sites.len());
    assert_eq!(log.truth.blocked_pairs.len(), 38, "the injected blocked pairs");

    let mut stamped_faults = 0u64;
    for (r, stamp) in out.dataset.records.iter().zip(&log.records) {
        let all = stamp.all();
        if r.proxy.is_some() {
            // The proxy hides the replica: connect-phase stamping is
            // impossible from this vantage, and pair-level conditions
            // between the *client* and the site cannot reach the stamp.
            assert!(stamp.connect.is_empty(), "proxied records stamp DNS-phase only");
            assert!(!all.contains(FaultSet::BLOCKED_PAIR) && !all.contains(FaultSet::DEGRADED_PAIR));
        } else {
            // Direct records never carry proxy-infrastructure flags.
            assert!(!all.contains(FaultSet::PROXY_LINK) && !all.contains(FaultSet::PROXY_LDNS));
        }
        stamped_faults += u64::from(!all.is_empty());
    }
    assert!(stamped_faults > 0, "an 8-hour window must hit some injected fault");

    // Failed records on an injected blocked pair whose failure reached the
    // connect phase must carry the pair-specific stamp.
    let blocked: std::collections::HashSet<(u16, u16)> =
        log.truth.blocked_pairs.iter().copied().collect();
    let mut blocked_failures = 0u64;
    for (r, stamp) in out.dataset.records.iter().zip(&log.records) {
        if r.proxy.is_none()
            && r.failed()
            && !r.failure().expect("failed").is_dns()
            && blocked.contains(&(r.client.0, r.site.0))
        {
            assert!(stamp.connect.contains(FaultSet::BLOCKED_PAIR));
            assert_eq!(stamp.all().true_blame(), TrueBlame::PairSpecific);
            blocked_failures += 1;
        }
    }
    assert!(blocked_failures > 0, "blocked pairs fail constantly by design");
}

#[test]
fn archetype_stamps_track_window_boundaries_mid_hour() {
    let (fleet, sites, mut gt) = small_world(6);
    // BGP reconfiguration transient for client 0 from 1h24m to 1h36m, and a
    // co-location blast on site 3's shared rack from 2h15m to 2h45m. Both
    // stamps must flip at the instant, not at the hour bin.
    gt.adversarial.bgp_transient =
        vec![netsim::Timeline::constant(false); fleet.clients.len()];
    gt.adversarial.bgp_transient[0] =
        Timeline::from_changes(false, [(t(1.4), true), (t(1.6), false)]);
    gt.adversarial.colo_of_site.insert(3, 0);
    gt.adversarial.colo_blast =
        vec![Timeline::from_changes(false, [(t(2.25), true), (t(2.75), false)])];
    let view = ClientView::new(&gt, 0);
    let replica = workload::sites::site_addresses(3, sites[3].layout)[0];

    assert!(!view.true_faults(replica, t(1.39)).contains(FaultSet::BGP_TRANSIENT));
    for probe in [1.4, 1.5, 1.59] {
        let s = view.true_faults(replica, t(probe));
        assert!(s.contains(FaultSet::BGP_TRANSIENT), "transient active at {probe}h");
        assert_eq!(s.true_blame(), TrueBlame::ClientSide, "a path flap is the client's problem");
    }
    assert!(!view.true_faults(replica, t(1.61)).contains(FaultSet::BGP_TRANSIENT));

    assert!(!view.true_faults(replica, t(2.2)).contains(FaultSet::COLO_BLAST));
    let blast = view.true_faults(replica, t(2.5));
    assert!(blast.contains(FaultSet::COLO_BLAST));
    assert_eq!(blast.true_blame(), TrueBlame::ServerSide);
    assert!(!view.true_faults(replica, t(2.8)).contains(FaultSet::COLO_BLAST));

    // A site outside the blasted rack never picks up the stamp.
    let other = workload::sites::site_addresses(4, sites[4].layout)[0];
    assert!(!view.true_faults(other, t(2.5)).contains(FaultSet::COLO_BLAST));
}

#[test]
fn overlapping_archetypes_union_and_censorship_short_circuits() {
    let (_, sites, mut gt) = small_world(6);
    // Censorship of (client 0, site 0) from 1h to 3h, a colo blast covering
    // site 0 from 2h to 4h, and the client's own last-mile outage inside
    // the overlap — the stamp must union all three, and censorship must
    // dominate the blame verdict like the paper's near-permanent pairs.
    gt.adversarial.censored_clients.insert(0);
    gt.adversarial.censored_sites.insert(0);
    gt.adversarial.censor_window =
        Timeline::from_changes(false, [(t(1.0), true), (t(3.0), false)]);
    gt.adversarial.colo_of_site.insert(0, 0);
    gt.adversarial.colo_blast =
        vec![Timeline::from_changes(false, [(t(2.0), true), (t(4.0), false)])];
    gt.link[0] = Timeline::from_changes(false, [(t(2.25), true), (t(2.75), false)]);
    // Silence the materialized world's own faults on the probed pair so the
    // verdicts below reflect the archetypes alone.
    gt.wan[0] = Timeline::constant(false);
    gt.blocked.remove(&(0, 0));
    gt.degraded_pairs.remove(&(0, 0));
    let view = ClientView::new(&gt, 0);
    let replica = workload::sites::site_addresses(0, sites[0].layout)[0];

    let only_censor = view.true_faults(replica, t(1.5));
    assert!(only_censor.contains(FaultSet::CENSORED));
    assert!(!only_censor.contains(FaultSet::COLO_BLAST));
    assert_eq!(only_censor.true_blame(), TrueBlame::PairSpecific);

    let two = view.true_faults(replica, t(2.1));
    assert!(two.contains(FaultSet::CENSORED | FaultSet::COLO_BLAST));

    let three = view.true_faults(replica, t(2.5));
    assert!(three.contains(
        FaultSet::CENSORED | FaultSet::COLO_BLAST | FaultSet::LAST_MILE
    ));
    assert_eq!(
        three.true_blame(),
        TrueBlame::PairSpecific,
        "censorship short-circuits blame even under a client+server overlap"
    );

    let after = view.true_faults(replica, t(3.5));
    assert!(!after.contains(FaultSet::CENSORED));
    assert!(after.contains(FaultSet::COLO_BLAST));
    assert_eq!(after.true_blame(), TrueBlame::ServerSide);

    // An uncensored client at the same site sees only the blast.
    let bystander = ClientView::new(&gt, 1).true_faults(replica, t(2.5));
    assert!(bystander.contains(FaultSet::COLO_BLAST));
    assert!(!bystander.contains(FaultSet::CENSORED));
}

#[test]
fn proxied_vantage_hides_client_scoped_archetypes() {
    let (fleet, sites, mut gt) = small_world(6);
    // Turn every archetype on at once for site 0 and every client. The
    // direct vantage stamps them all; the proxy path stamps only the
    // archetypes that are really upstream of it (shared-rack blasts and
    // poisoned zones) — censorship of the *client's* region, the client
    // prefix's route flap, the direct-path-only split, the regional
    // brownout, and the client-path MTU hole do not exist from there.
    let everywhere = Timeline::constant(true);
    let n = fleet.clients.len();
    gt.adversarial.bgp_transient = vec![everywhere.clone(); n];
    for c in 0..n as u16 {
        gt.adversarial.censored_clients.insert(c);
        gt.adversarial.mtu_blackhole.insert((c, 0), everywhere.clone());
    }
    gt.adversarial.censored_sites.insert(0);
    gt.adversarial.censor_window = everywhere.clone();
    gt.adversarial.colo_of_site.insert(0, 0);
    gt.adversarial.colo_blast = vec![everywhere.clone()];
    gt.adversarial.vantage_split.insert(0, everywhere.clone());
    gt.adversarial.group_of_client = vec![Some(0); n];
    gt.adversarial
        .cdn_brownout
        .insert(0, (std::collections::HashSet::from([0u16]), everywhere.clone()));
    let decoy: std::net::Ipv4Addr = "192.0.2.10".parse().expect("valid addr");
    gt.adversarial.decoys.insert(decoy);

    let replica = workload::sites::site_addresses(0, sites[0].layout)[0];
    let direct = ClientView::new(&gt, 0).true_faults(replica, t(1.0));
    assert!(direct.contains(
        FaultSet::BGP_TRANSIENT
            | FaultSet::CENSORED
            | FaultSet::COLO_BLAST
            | FaultSet::VANTAGE_SPLIT
            | FaultSet::CDN_BROWNOUT
            | FaultSet::MTU_BLACKHOLE
    ));

    let proxied = ProxyView::new(&gt, 0).true_faults(replica, t(1.0));
    assert!(proxied.contains(FaultSet::COLO_BLAST), "rack blasts hit every vantage");
    for hidden in [
        FaultSet::BGP_TRANSIENT,
        FaultSet::CENSORED,
        FaultSet::VANTAGE_SPLIT,
        FaultSet::CDN_BROWNOUT,
        FaultSet::MTU_BLACKHOLE,
    ] {
        assert!(
            !proxied.contains(hidden),
            "{:?} is client-scoped and must not stamp the proxy path",
            hidden.names()
        );
    }
    // Decoy addresses are poisoned at the zone, so both vantages stamp them.
    assert!(ProxyView::new(&gt, 0).true_faults(decoy, t(1.0)).contains(FaultSet::WRONG_DNS));
    assert!(ClientView::new(&gt, 0).true_faults(decoy, t(1.0)).contains(FaultSet::WRONG_DNS));
}

#[test]
fn vantage_split_and_mtu_shape_the_direct_path_only() {
    use tcpsim::ServerBehavior;
    let (_, sites, mut gt) = small_world(6);
    gt.adversarial.vantage_split.insert(0, Timeline::from_changes(false, [(t(1.0), true), (t(2.0), false)]));
    gt.adversarial.mtu_blackhole.insert((0, 2), Timeline::from_changes(false, [(t(1.0), true), (t(2.0), false)]));

    let view = ClientView::new(&gt, 0);
    let split_replica = workload::sites::site_addresses(0, sites[0].layout)[0];
    // The split site accepts the connect and never answers — but only on
    // the direct path, and only inside the window.
    assert_eq!(view.server_behavior(split_replica, t(1.5)), ServerBehavior::AcceptNoResponse);
    assert_ne!(
        ProxyView::new(&gt, 0).server_behavior(split_replica, t(1.5)),
        ServerBehavior::AcceptNoResponse
    );

    // The MTU hole lets the connect and the first ~1.2 kB through, then
    // the transfer hangs; another client's path to the same site is clean.
    let mtu_replica = workload::sites::site_addresses(2, sites[2].layout)[0];
    let bytes = gt.site_index_bytes[2];
    assert_eq!(
        view.server_behavior(mtu_replica, t(1.5)),
        ServerBehavior::StallAfter(1200u64.min(bytes))
    );
    let stamp = view.true_faults(mtu_replica, t(1.5));
    assert!(stamp.contains(FaultSet::MTU_BLACKHOLE));
    assert_eq!(stamp.true_blame(), TrueBlame::PairSpecific);
    assert!(!ClientView::new(&gt, 1)
        .true_faults(mtu_replica, t(1.5))
        .contains(FaultSet::MTU_BLACKHOLE));
    assert!(!view.true_faults(mtu_replica, t(2.1)).contains(FaultSet::MTU_BLACKHOLE));
}

#[test]
fn cdn_brownout_scopes_to_the_faulted_region() {
    let (fleet, sites, mut gt) = small_world(6);
    // Site 2 browns out for region group 0 between 1h and 2h. Clients in
    // group 0 carry the stamp inside the window; clients elsewhere never do.
    let n = fleet.clients.len();
    gt.adversarial.group_of_client = (0..n).map(|c| Some((c % 2) as u16)).collect();
    gt.adversarial.cdn_brownout.insert(
        2,
        (
            std::collections::HashSet::from([0u16]),
            Timeline::from_changes(false, [(t(1.0), true), (t(2.0), false)]),
        ),
    );
    let replica = workload::sites::site_addresses(2, sites[2].layout)[0];

    let in_region = ClientView::new(&gt, 0).true_faults(replica, t(1.5));
    assert!(in_region.contains(FaultSet::CDN_BROWNOUT));
    assert_eq!(in_region.true_blame(), TrueBlame::ServerSide);
    assert!(!ClientView::new(&gt, 0).true_faults(replica, t(0.5)).contains(FaultSet::CDN_BROWNOUT));
    assert!(!ClientView::new(&gt, 1).true_faults(replica, t(1.5)).contains(FaultSet::CDN_BROWNOUT));
}

#[test]
fn wrong_dns_stamps_both_phases_and_heals_with_the_window() {
    let (_, sites, mut gt) = small_world(6);
    let host: dnswire::DomainName = sites[0].hostname.parse().expect("valid hostname");
    let apex = dnssim::zones::registrable_domain(&host);
    let decoy: std::net::Ipv4Addr = "192.0.2.10".parse().expect("valid addr");
    gt.adversarial.wrong_dns.insert(
        apex,
        (Timeline::from_changes(false, [(t(1.0), true), (t(2.0), false)]), decoy),
    );
    gt.adversarial.decoys.insert(decoy);

    let view = ClientView::new(&gt, 0);
    // DNS-phase stamp follows the poisoning window exactly.
    assert!(!view.true_dns_faults(&host, t(0.9)).contains(FaultSet::WRONG_DNS));
    assert!(view.true_dns_faults(&host, t(1.5)).contains(FaultSet::WRONG_DNS));
    assert!(!view.true_dns_faults(&host, t(2.1)).contains(FaultSet::WRONG_DNS));
    // Connect-phase: the decoy is stamped whenever it is dialed (a cached
    // poisoned answer can outlive the window); real replicas never are.
    let stamp = view.true_faults(decoy, t(1.5));
    assert!(stamp.contains(FaultSet::WRONG_DNS));
    assert_eq!(stamp.true_blame(), TrueBlame::ServerSide);
    let real = workload::sites::site_addresses(0, sites[0].layout)[0];
    assert!(!view.true_faults(real, t(1.5)).contains(FaultSet::WRONG_DNS));
    // The zone serves everyone the decoy, so the proxy vantage agrees.
    assert!(ProxyView::new(&gt, 0).true_dns_faults(&host, t(1.5)).contains(FaultSet::WRONG_DNS));
}

#[test]
fn audit_clears_the_agreement_floor_end_to_end() {
    use netprofiler::{audit, Analysis, AnalysisConfig};
    let mut cfg = ExperimentConfig::quick(20050101);
    cfg.hours = 24;
    cfg.wire_fidelity = false;
    cfg.record_provenance = true;
    let out = run_experiment(&cfg);
    let log = out.provenance.expect("provenance requested");
    let analysis = Analysis::new(&out.dataset, AnalysisConfig::default());
    let report = audit::audit(&analysis, &log);

    assert_eq!(report.stamped_records, out.dataset.records.len() as u64);
    assert!(report.blame.total() > 0, "a day of accesses produces scorable failures");
    assert!(
        report.blame.agreement() >= 0.5,
        "blame agreement {:.3} below the 0.5 floor\nmatrix: {:?}",
        report.blame.agreement(),
        report.blame.matrix
    );
    // Detection never invents blocked pairs that were not injected.
    assert_eq!(report.pairs.spurious, Vec::<(u16, u16)>::new());
    assert!(report.pairs.overlap.precision() >= 0.5);
}
