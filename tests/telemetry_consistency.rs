//! Cross-check: the telemetry layer and the analysis pipeline must tell the
//! same story. The per-category transaction/connection counters that
//! `workload::run_experiment` records are compared *exactly* against the
//! Table 3 aggregates `netprofiler::summary::table3` computes from the same
//! dataset — a disagreement would mean the observability layer is lying
//! about the run it observed.
//!
//! This test lives in its own binary because telemetry metrics are
//! process-global: enabling/resetting the recorder here must not race other
//! integration tests.

#![cfg(feature = "profiling")]

use model::ClientCategory;
use workload::{run_experiment, ExperimentConfig};

#[test]
fn per_class_failure_counters_match_table3_aggregates() {
    telemetry::enable(true);
    telemetry::reset();
    let mut cfg = ExperimentConfig::quick(991);
    cfg.hours = 8;
    let out = run_experiment(&cfg);
    let snap = telemetry::snapshot();
    telemetry::enable(false);

    // The runner attached the rendered summary to the report.
    let summary = out
        .report
        .telemetry_summary
        .as_deref()
        .expect("profiled run carries a telemetry summary");
    assert!(summary.contains("workload.transactions"));

    let rows = netprofiler::summary::table3(&model::ColumnarDataset::from_dataset(&out.dataset));
    assert_eq!(rows.len(), ClientCategory::ALL.len());
    for row in &rows {
        let label = row.category.abbrev();
        assert_eq!(
            snap.counter(&format!("workload.transactions{{{label}}}")),
            row.transactions,
            "{label} transactions"
        );
        assert_eq!(
            snap.counter(&format!("workload.failed_transactions{{{label}}}")),
            row.failed_transactions,
            "{label} failed transactions"
        );
        // Table 3 masks CN connections (proxied); the counters still hold
        // the raw counts, so compare against the dataset directly.
        let raw_conns = out
            .dataset
            .connections
            .iter()
            .filter(|c| out.dataset.client(c.client).category == row.category)
            .count() as u64;
        let raw_failed = out
            .dataset
            .connections
            .iter()
            .filter(|c| out.dataset.client(c.client).category == row.category && c.failed())
            .count() as u64;
        assert_eq!(
            snap.counter(&format!("workload.connections{{{label}}}")),
            raw_conns,
            "{label} connections"
        );
        assert_eq!(
            snap.counter(&format!("workload.failed_connections{{{label}}}")),
            raw_failed,
            "{label} failed connections"
        );
        if let (Some(conns), Some(failed)) = (row.connections, row.failed_connections) {
            assert_eq!(conns, raw_conns, "{label} table3 connections unmasked");
            assert_eq!(failed, raw_failed, "{label} table3 failed connections unmasked");
        } else {
            assert_eq!(row.category, ClientCategory::CorpNet, "only CN is masked");
        }
    }

    // The grand totals agree with the dataset too.
    let total_txns: u64 = rows.iter().map(|r| r.transactions).sum();
    assert_eq!(total_txns, out.dataset.records.len() as u64);
    // And the engine actually dispatched events to produce them.
    assert!(snap.counter("engine.events_dispatched") > 0);
    assert!(snap.counter("workload.accesses_attempted") >= total_txns);
}
